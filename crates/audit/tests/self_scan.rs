//! The acceptance gates for the analyzer itself:
//!
//! 1. the shipped workspace is clean **modulo the committed baseline** —
//!    every new violation has been fixed or carries a justified
//!    `audit: allow`, and every grandfathered one is in `baseline.txt`,
//! 2. the seeded fixture tree trips every rule (lexical and
//!    interprocedural), so the scan cannot have silently gone blind, and
//! 3. two scans of the same tree emit byte-identical reports.

use std::path::PathBuf;

use cfa_audit::{
    scan_tree, scan_tree_with_stats_at, to_json, to_sarif, Baseline, Rule, BASELINE_REL_PATH,
};

fn audit_crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    audit_crate_dir().join("../..").canonicalize().unwrap()
}

#[test]
fn shipped_workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let findings = scan_tree(&root).unwrap();
    let baseline = Baseline::load(&root.join(BASELINE_REL_PATH));
    let flags = baseline.classify(&findings);
    let fresh: Vec<String> = findings
        .iter()
        .zip(&flags)
        .filter(|&(_, &grandfathered)| !grandfathered)
        .map(|(f, _)| f.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "the shipped tree must audit clean modulo baseline.txt; new findings:\n{}",
        fresh.join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    for rule in Rule::ALL {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "seeded fixture no longer trips {rule}; findings: {findings:?}"
        );
    }
    // The justified allow in the fixture must still suppress its line.
    assert!(
        !findings
            .iter()
            .any(|f| f.snippet.contains("keys().count()")),
        "allowed-with-reason line was flagged: {findings:?}"
    );
}

#[test]
fn fixture_interprocedural_findings_carry_call_chains() {
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d006 = findings
        .iter()
        .find(|f| f.rule == Rule::D006 && f.file.ends_with("sim/src/simulator.rs"))
        .expect("fixture D006");
    let note = d006.note.as_deref().unwrap_or("");
    assert!(
        note.contains("Simulator::run") && note.contains("Simulator::dispatch"),
        "D006 note must show the reaching chain, got: {note}"
    );
    let d008 = findings
        .iter()
        .find(|f| f.rule == Rule::D008 && f.file.ends_with("ml/src/model.rs"))
        .expect("fixture D008");
    assert!(
        d008.note.as_deref().unwrap_or("").contains("predict_row"),
        "D008 note must show the predict-path root, got: {:?}",
        d008.note
    );
}

#[test]
fn fixture_serve_request_path_roots_are_live() {
    // The serving roots added with cfa-serve: `handle_conn` seeds D006
    // reachability and `score_rows_into` seeds D008 reachability, so a
    // panic or allocation on the network request path cannot go blind.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d006 = findings
        .iter()
        .find(|f| f.rule == Rule::D006 && f.file.ends_with("serve/src/handler.rs"))
        .expect("serve fixture D006");
    assert!(
        d006.note.as_deref().unwrap_or("").contains("handle_conn"),
        "serve D006 note must root at handle_conn, got: {:?}",
        d006.note
    );
    let d008 = findings
        .iter()
        .find(|f| f.rule == Rule::D008 && f.file.ends_with("serve/src/handler.rs"))
        .expect("serve fixture D008");
    assert!(
        d008.note
            .as_deref()
            .unwrap_or("")
            .contains("score_rows_into"),
        "serve D008 note must root at score_rows_into, got: {:?}",
        d008.note
    );
}

#[test]
fn fixture_compiled_engine_roots_are_live() {
    // The compiled-engine roots: `CompiledEnsemble::score_batch` (the
    // structure-of-arrays batch entry) and `CompiledEnsemble::score_row`
    // seed D008 and D006 reachability, so an allocation or panic planted
    // on the compiled scoring path is caught.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d008 = findings
        .iter()
        .find(|f| f.rule == Rule::D008 && f.file.ends_with("ml/src/compiled.rs"))
        .expect("compiled-path fixture D008");
    assert!(
        d008.note
            .as_deref()
            .unwrap_or("")
            .contains("CompiledEnsemble::score"),
        "compiled D008 note must root at a CompiledEnsemble entry, got: {:?}",
        d008.note
    );
    let d006 = findings
        .iter()
        .find(|f| f.rule == Rule::D006 && f.file.ends_with("ml/src/compiled.rs"))
        .expect("compiled-path fixture D006");
    assert!(
        d006.note
            .as_deref()
            .unwrap_or("")
            .contains("CompiledEnsemble::score"),
        "compiled D006 note must root at a CompiledEnsemble entry, got: {:?}",
        d006.note
    );
}

#[test]
fn fixture_grid_and_fleet_roots_are_live() {
    // The kernel scale-up roots: `SpatialGrid::candidates_into` (the
    // per-frame neighbor query) seeds D008 reachability and `run_fleet`
    // (the corpus-production driver) seeds D006 reachability, so an
    // allocation in the grid query or a panic under the fleet driver is
    // caught.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d008 = findings
        .iter()
        .find(|f| f.rule == Rule::D008 && f.file.ends_with("sim/src/grid.rs"))
        .expect("grid fixture D008");
    assert!(
        d008.note
            .as_deref()
            .unwrap_or("")
            .contains("candidates_into"),
        "grid D008 note must root at candidates_into, got: {:?}",
        d008.note
    );
    let d006 = findings
        .iter()
        .find(|f| f.rule == Rule::D006 && f.file.ends_with("sim/src/grid.rs"))
        .expect("fleet fixture D006");
    assert!(
        d006.note.as_deref().unwrap_or("").contains("run_fleet"),
        "fleet D006 note must root at run_fleet, got: {:?}",
        d006.note
    );
}

#[test]
fn fixture_reactor_fanout_and_registry_roots_are_live() {
    // The fleet front-end roots: `Reactor::run` seeds D006 reachability
    // (a panic in the event loop drops every connection at once),
    // `fanout_alarms` seeds D008 (a per-alarm allocation stalls the
    // loop), and the registry-swap lock pair keeps the D014 cycle check
    // pointed at the name → model map.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d006 = findings
        .iter()
        .find(|f| f.rule == Rule::D006 && f.file.ends_with("serve/src/reactor.rs"))
        .expect("reactor fixture D006");
    assert!(
        d006.note.as_deref().unwrap_or("").contains("Reactor::run"),
        "reactor D006 note must root at Reactor::run, got: {:?}",
        d006.note
    );
    let d008 = findings
        .iter()
        .find(|f| f.rule == Rule::D008 && f.file.ends_with("serve/src/reactor.rs"))
        .expect("fan-out fixture D008");
    assert!(
        d008.note.as_deref().unwrap_or("").contains("fanout_alarms"),
        "fan-out D008 note must root at fanout_alarms, got: {:?}",
        d008.note
    );
    let d014 = findings
        .iter()
        .find(|f| f.rule == Rule::D014 && f.file.ends_with("serve/src/reactor.rs"))
        .expect("registry-swap fixture D014");
    assert!(
        d014.note
            .as_deref()
            .unwrap_or("")
            .contains("lock-order cycle"),
        "registry-swap D014 note must name the cycle, got: {:?}",
        d014.note
    );
}

#[test]
fn fixture_taint_findings_carry_source_to_sink_chains() {
    // The taint layer's findings must read like D006's: the note names
    // the untrusted source and the call chain from source to sink.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d012 = findings
        .iter()
        .find(|f| f.rule == Rule::D012 && f.file.ends_with("serve/src/frame.rs"))
        .expect("taint fixture D012");
    let note = d012.note.as_deref().unwrap_or("");
    assert!(
        note.contains("stream.read_exact")
            && note.contains("read_frame")
            && note.contains("alloc_body"),
        "D012 note must carry the source and the source→sink chain, got: {note}"
    );
    let d013 = findings
        .iter()
        .find(|f| f.rule == Rule::D013 && f.file.ends_with("serve/src/frame.rs"))
        .expect("taint fixture D013");
    assert!(
        d013.note.as_deref().unwrap_or("").contains("stream.read"),
        "D013 note must name the network source, got: {:?}",
        d013.note
    );
}

#[test]
fn fixture_lock_findings_cover_cycle_and_blocking_guard() {
    // Both D014 shapes stay live: the snapshot/retire reverse-order
    // cycle, and the guard relay holds across forward's socket write.
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    let d014: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::D014)
        .filter_map(|f| f.note.as_deref())
        .collect();
    assert!(
        d014.iter().any(|n| n.contains("lock-order cycle")),
        "fixture must trip the D014 lock-order cycle, got: {d014:?}"
    );
    assert!(
        d014.iter()
            .any(|n| n.contains("blocking call") && n.contains("write_all")),
        "fixture must trip the D014 blocking-guard check, got: {d014:?}"
    );
}

#[test]
fn parallel_scan_is_byte_identical_across_thread_counts() {
    // The `map_chunks` contract applied to the analyzer itself: the
    // report bytes must not depend on `--threads`.
    let root = workspace_root();
    let baseline = Baseline::load(&root.join(BASELINE_REL_PATH));
    let run = |threads: usize| {
        let (findings, stats) = scan_tree_with_stats_at(&root, threads).unwrap();
        let flags = baseline.classify(&findings);
        (
            to_json(&findings, &flags),
            to_sarif(&findings, &flags),
            stats,
        )
    };
    let (json_1, sarif_1, stats_1) = run(1);
    for threads in [2, 4] {
        let (json_n, sarif_n, stats_n) = run(threads);
        assert_eq!(
            json_1, json_n,
            "JSON report must be byte-identical at {threads} threads"
        );
        assert_eq!(
            sarif_1, sarif_n,
            "SARIF report must be byte-identical at {threads} threads"
        );
        assert_eq!(stats_1, stats_n, "scan stats must not depend on threads");
    }
}

#[test]
fn fixture_findings_are_ordered_and_located() {
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    // Ordering is (file, line, rule): sorted file keys, ascending lines.
    let keys: Vec<(&str, usize)> = findings.iter().map(|f| (f.file.as_str(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "findings must come out in deterministic (file, line) order"
    );
    assert!(findings.iter().all(|f| f.line > 0));
}

#[test]
fn repeated_scans_emit_byte_identical_reports() {
    let root = workspace_root();
    let baseline = Baseline::load(&root.join(BASELINE_REL_PATH));
    let run = || {
        let findings = scan_tree(&root).unwrap();
        let flags = baseline.classify(&findings);
        (to_json(&findings, &flags), to_sarif(&findings, &flags))
    };
    let (json_a, sarif_a) = run();
    let (json_b, sarif_b) = run();
    assert_eq!(json_a, json_b, "JSON report must be byte-deterministic");
    assert_eq!(sarif_a, sarif_b, "SARIF report must be byte-deterministic");
    assert!(sarif_a.contains("\"version\": \"2.1.0\""));
}
