//! The two acceptance gates for the analyzer itself:
//!
//! 1. the shipped workspace is finding-free (every real violation has
//!    either been fixed or carries a justified `audit: allow`), and
//! 2. the seeded fixture tree trips every rule, so the scan cannot have
//!    silently gone blind.

use std::path::PathBuf;

use cfa_audit::{scan_tree, Rule};

fn audit_crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn shipped_workspace_is_finding_free() {
    let root = audit_crate_dir().join("../..").canonicalize().unwrap();
    let findings = scan_tree(&root).unwrap();
    assert!(
        findings.is_empty(),
        "the shipped tree must audit clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    for rule in Rule::ALL {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "seeded fixture no longer trips {rule}; findings: {findings:?}"
        );
    }
    // The justified allow in the fixture must still suppress its line.
    assert!(
        !findings
            .iter()
            .any(|f| f.snippet.contains("keys().count()")),
        "allowed-with-reason line was flagged: {findings:?}"
    );
}

#[test]
fn fixture_findings_are_ordered_and_located() {
    let root = audit_crate_dir().join("fixtures/seeded");
    let findings = scan_tree(&root).unwrap();
    // Walk order is sorted, so ml/ findings precede sim/ findings.
    let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
    let mut sorted = files.clone();
    sorted.sort();
    assert_eq!(
        files, sorted,
        "findings must come out in deterministic file order"
    );
    assert!(findings.iter().all(|f| f.line > 0));
}
