//! JSON and SARIF emitters for audit findings — hand-rolled (the crate is
//! dependency-free) and byte-deterministic: no timestamps, no absolute
//! paths, stable ordering everywhere, so two runs over the same tree emit
//! identical bytes and CI can diff or cache them.

use crate::{Finding, Rule, Severity};
use std::fmt::Write as _;

/// Version string stamped into both report formats.
pub const TOOL_VERSION: &str = "4.0.0";

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// Renders findings as the tool's native JSON report. `baselined[i]`
/// says whether `findings[i]` is grandfathered by the baseline file.
pub fn to_json(findings: &[Finding], baselined: &[bool]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"cfa-audit\",\n");
    let _ = writeln!(out, "  \"version\": \"{TOOL_VERSION}\",");
    let new = baselined.iter().filter(|&&b| !b).count();
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"total\": {}, \"new\": {}, \"baselined\": {} }},",
        findings.len(),
        new,
        findings.len() - new
    );
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"note\": {}, \"baselined\": {} }}",
            f.rule,
            severity_str(f.severity),
            json_escape(&f.file),
            f.line,
            json_escape(&f.snippet),
            match &f.note {
                Some(n) => format!("\"{}\"", json_escape(n)),
                None => "null".to_string(),
            },
            baselined.get(i).copied().unwrap_or(false),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as SARIF 2.1.0 for CI code-scanning annotation.
/// Baselined findings keep `baselineState: "unchanged"` and drop to level
/// `note`; new findings are `"new"` at their rule's severity.
pub fn to_sarif(findings: &[Finding], baselined: &[bool]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"cfa-audit\",\n");
    let _ = writeln!(out, "          \"version\": \"{TOOL_VERSION}\",");
    out.push_str("          \"informationUri\": \"https://example.invalid/manet-cfa\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }}, \"help\": {{ \"text\": \"{}\" }}, \"defaultConfiguration\": {{ \"level\": \"{}\" }} }}",
            rule,
            json_escape(rule.summary()),
            json_escape(rule.hint()),
            severity_str(rule.severity()),
        );
        out.push_str(if i + 1 < Rule::ALL.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let is_base = baselined.get(i).copied().unwrap_or(false);
        let level = if is_base {
            "note"
        } else {
            severity_str(f.severity)
        };
        let rule_index = Rule::ALL.iter().position(|r| *r == f.rule).unwrap_or(0);
        let message = match &f.note {
            Some(n) => format!("{}: {} [{}]", f.rule.summary(), f.snippet, n),
            None => format!("{}: {}", f.rule.summary(), f.snippet),
        };
        let _ = write!(
            out,
            "        {{ \"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \"baselineState\": \"{}\", \"message\": {{ \"text\": \"{}\" }}, \"locations\": [ {{ \"physicalLocation\": {{ \"artifactLocation\": {{ \"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\" }}, \"region\": {{ \"startLine\": {} }} }} }} ] }}",
            f.rule,
            rule_index,
            level,
            if is_base { "unchanged" } else { "new" },
            json_escape(&message),
            json_escape(&f.file),
            f.line,
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: Rule::D006,
            file: "crates/sim/src/x.rs".into(),
            line: 3,
            snippet: "v[0].unwrap() // \"quoted\"".into(),
            note: Some("unwrap() reachable via Simulator::run".into()),
            severity: Severity::Error,
        }]
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let f = sample();
        let a = to_json(&f, &[false]);
        let b = to_json(&f, &[false]);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"new\": 1"));
    }

    #[test]
    fn sarif_has_schema_rules_and_baseline_state() {
        let f = sample();
        let s = to_sarif(&f, &[true]);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"id\": \"D008\""));
        assert!(s.contains("\"baselineState\": \"unchanged\""));
        assert!(s.contains("\"level\": \"note\""));
        let s_new = to_sarif(&f, &[false]);
        assert!(s_new.contains("\"baselineState\": \"new\""));
        assert!(s_new.contains("\"level\": \"error\""));
    }

    #[test]
    fn sarif_is_balanced_json_shape() {
        let s = to_sarif(&sample(), &[false]);
        // Cheap structural sanity: balanced braces/brackets outside strings.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            match c {
                '"' if prev != '\\' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            prev = if prev == '\\' && c == '\\' { ' ' } else { c };
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
