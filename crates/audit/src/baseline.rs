//! The findings baseline: a committed, diff-friendly ledger of
//! grandfathered findings. New code is held to deny-level — CI fails on
//! any finding *not* in the baseline — while pre-existing findings burn
//! down over time (shrinking the file is always safe; growing it is a
//! reviewed decision).
//!
//! Format: one tab-separated line per grandfathered finding,
//! `RULE<TAB>file<TAB>snippet`, sorted; `#` lines are comments. The
//! snippet (the trimmed source line) is the stable part of a finding's
//! identity — line numbers shift with every edit, the offending
//! expression does not. Matching is multiset-aware: two identical
//! offending lines in one file need two baseline entries.

use crate::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// A loaded baseline: finding keys with multiplicities.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<String, usize>,
}

/// The workspace-relative location of the committed baseline.
pub const BASELINE_REL_PATH: &str = "crates/audit/baseline.txt";

fn key(rule: &str, file: &str, snippet: &str) -> String {
    // Tabs cannot appear in the parts: paths are ours, snippets are
    // whitespace-trimmed source lines with interior tabs normalised.
    format!("{rule}\t{file}\t{}", snippet.replace('\t', " "))
}

impl Baseline {
    /// Parses baseline text. Unparseable lines are ignored rather than
    /// fatal — a corrupted baseline can only make the audit stricter.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(rule), Some(file), Some(snippet)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            *entries.entry(key(rule, file, snippet)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Baseline::default(),
        }
    }

    /// Number of grandfathered entries (with multiplicity).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline grandfathers nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Classifies `findings` against the baseline: returns one flag per
    /// finding, true = grandfathered. Multiset semantics: each baseline
    /// entry absorbs at most its multiplicity, in finding order.
    pub fn classify(&self, findings: &[Finding]) -> Vec<bool> {
        let mut budget = self.entries.clone();
        findings
            .iter()
            .map(|f| {
                let k = key(f.rule.id(), &f.file, &f.snippet);
                match budget.get_mut(&k) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                }
            })
            .collect()
    }

    /// Serialises `findings` as fresh baseline text (sorted, commented
    /// header) — the `--update-baseline` output.
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| key(f.rule.id(), &f.file, &f.snippet))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# cfa-audit baseline — grandfathered findings (RULE<TAB>file<TAB>snippet).\n\
             # New findings are deny-level; shrink this file by fixing entries, never grow\n\
             # it without review. Regenerate with `cargo run -p cfa-audit -- --update-baseline`.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rule, Severity};

    fn finding(rule: Rule, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            note: None,
            severity: Severity::Error,
        }
    }

    #[test]
    fn round_trip_classifies_everything_as_baselined() {
        let fs = vec![
            finding(Rule::D006, "a.rs", "x[0]"),
            finding(Rule::D008, "b.rs", "y.clone()"),
        ];
        let b = Baseline::parse(&Baseline::render(&fs));
        assert_eq!(b.len(), 2);
        assert_eq!(b.classify(&fs), vec![true, true]);
    }

    #[test]
    fn multiset_matching_absorbs_each_entry_once() {
        let fs = vec![
            finding(Rule::D006, "a.rs", "x[0]"),
            finding(Rule::D006, "a.rs", "x[0]"),
        ];
        let one = Baseline::parse("D006\ta.rs\tx[0]\n");
        assert_eq!(one.classify(&fs), vec![true, false]);
        let two = Baseline::parse("D006\ta.rs\tx[0]\nD006\ta.rs\tx[0]\n");
        assert_eq!(two.classify(&fs), vec![true, true]);
    }

    #[test]
    fn line_shifts_do_not_invalidate_the_baseline() {
        let mut f = finding(Rule::D007, "a.rs", "self.log.push(e);");
        let b = Baseline::parse(&Baseline::render(&[f.clone()]));
        f.line = 999; // the file grew above the finding
        assert_eq!(b.classify(&[f]), vec![true]);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = Baseline::parse("# header\n\nD001\tx.rs\tfor k in m.keys() {\n");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.txt"));
        assert!(b.is_empty());
    }
}
