//! # cfa-audit
//!
//! A zero-dependency, four-layer static analyzer for the manet-cfa
//! workspace: a **lexical** determinism lint (PR 3), an
//! **interprocedural** reachability layer over a workspace call graph
//! (PR 4), a per-function **dataflow** value-tracking pass (PR 8), and an
//! interprocedural **taint** pass for untrusted network/CLI input plus a
//! lock-acquisition graph (this PR). The repo's headline guarantees — PR 1's "bit-identical at
//! any thread count" ensemble, PR 2's "batch == stream bit-for-bit"
//! equivalence — rest on discipline the compiler does not enforce: one
//! careless `HashMap` iteration, one wall-clock read, one reachable panic
//! in the event loop, one per-event allocation in the "zero-alloc"
//! predict path, and the reproducibility story silently rots. `cfa-audit`
//! enforces it statically, with no `syn` (the crate registry is
//! unreachable from the build hosts, so the analyzer is deliberately
//! dependency-free): a hand-rolled [`lexer`] is the shared front end, an
//! item [`parser`] extracts functions and call expressions, and a
//! [`graph::CallGraph`] resolves them workspace-wide (name-based, with
//! module/impl scoping, conservative on trait dispatch).
//!
//! ## Rules
//!
//! | ID   | Layer | What it flags | Where |
//! |------|-------|---------------|-------|
//! | D001 | lexical | unordered iteration over `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`, `for _ in &map`, …) | deterministic crates (sim, routing, traffic, attacks, features, core) and the root crate |
//! | D002 | lexical | wall clock / OS entropy (`SystemTime`, `Instant::now`, `thread_rng`, `RandomState`) | everywhere except `crates/bench` |
//! | D003 | lexical | `f64`/`f32` `==`/`!=` comparisons (use `to_bits()` or an epsilon) | non-test code |
//! | D004 | lexical | `unwrap()`/`expect()` in library hot paths | non-test code of sim, routing, features |
//! | D005 | lexical | bare `#[allow(...)]` without a justification comment | everywhere |
//! | D006 | interprocedural | `panic!`/`unwrap`/`expect`/slice indexing transitively reachable from `Simulator::run`'s event dispatch or from `predict_row` | whole workspace |
//! | D007 | interprocedural | a `self` field grown (`insert`/`push`/…) on the event path with no eviction/cap anywhere in the owning type | whole workspace |
//! | D008 | interprocedural | allocation (`Vec::new`, `to_vec`, `clone`, `format!`, `collect`, …) reachable from the zero-alloc predict/score path | whole workspace |
//! | D009 | dataflow | `f64` reduction (`sum::<f64>()`, float `fold`, `+=`) over parallel/chunked results without a documented canonical combine order | non-test code |
//! | D010 | dataflow | truncating cast (`as u16`/`as u32`/…) on a tracked wide value (u64/u128/SimTime/…) in a function reachable from the panic/predict hot roots | whole workspace |
//! | D011 | dataflow | guard held across direct stream I/O in the serving crate | `crates/serve` |
//! | D012 | taint | network/CLI-tainted value used as an allocation size (`with_capacity`, `reserve`, `resize`, …) without a dominating bound check | whole workspace |
//! | D013 | taint | network/CLI-tainted value used in slice indexing or `wrapping_*`/`unchecked_*` arithmetic | whole workspace |
//! | D014 | taint | lock-order violation: a cycle in the lock-acquisition graph, or a lock held across a call that reaches blocking stream I/O | `crates/serve` |
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with a justified annotation on the same
//! line or the line above:
//!
//! ```text
//! // audit: allow(D001, reason = "summing lengths; order cannot escape")
//! ```
//!
//! The `reason` is mandatory — an allow without one is itself reported.
//! For panic sites, a justified `allow(D004, …)` also covers D006: both
//! rules police the same panic contract, one written reason suffices.
//!
//! ## Baseline
//!
//! [`Baseline`] grandfathers pre-existing findings
//! (`crates/audit/baseline.txt`): new code is held to deny-level while
//! old findings burn down. `cfa-audit --update-baseline` regenerates the
//! file; CI fails on any non-baseline finding. JSON and SARIF reports
//! ([`to_json`], [`to_sarif`]) are byte-deterministic for identical
//! trees.

pub mod baseline;
pub mod dataflow;
pub mod emit;
pub mod fix;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod par;
pub mod parser;
pub mod taint;

pub use baseline::{Baseline, BASELINE_REL_PATH};
pub use emit::{to_json, to_sarif};
pub use fix::apply_fixes;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// A determinism rule enforced by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered iteration over a hash-based collection.
    D001,
    /// Wall-clock time or OS entropy.
    D002,
    /// Bitwise float equality comparison.
    D003,
    /// `unwrap`/`expect` in library hot-path code.
    D004,
    /// `#[allow(...)]` without a justification comment.
    D005,
    /// Panic reachable from event dispatch or the predict path.
    D006,
    /// Unbounded collection growth on the event path.
    D007,
    /// Allocation reachable from the zero-alloc predict path.
    D008,
    /// Non-canonical float reduction over parallel/chunked results.
    D009,
    /// Truncating integer cast on a wide value on a hot path.
    D010,
    /// Lock-discipline violation in the serving crate.
    D011,
    /// Tainted value used as an allocation size without a bound check.
    D012,
    /// Tainted value used in indexing or unchecked/wrapping arithmetic.
    D013,
    /// Lock-order cycle or lock held across a blocking call.
    D014,
}

/// How severe a rule's findings are: [`Severity::Error`] findings are
/// correctness/reproducibility hazards, [`Severity::Warning`] findings
/// are performance-contract violations. Both gate CI when not baselined;
/// the tier selects the SARIF level CI annotates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Correctness or reproducibility hazard.
    Error,
    /// Performance-contract violation.
    Warning,
}

impl Rule {
    /// Every rule, in id order.
    pub const ALL: [Rule; 14] = [
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::D005,
        Rule::D006,
        Rule::D007,
        Rule::D008,
        Rule::D009,
        Rule::D010,
        Rule::D011,
        Rule::D012,
        Rule::D013,
        Rule::D014,
    ];

    /// The rule's stable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::D007 => "D007",
            Rule::D008 => "D008",
            Rule::D009 => "D009",
            Rule::D010 => "D010",
            Rule::D011 => "D011",
            Rule::D012 => "D012",
            Rule::D013 => "D013",
            Rule::D014 => "D014",
        }
    }

    /// Parses an identifier like `D001`.
    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description of what the rule protects.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "unordered iteration over HashMap/HashSet in a deterministic crate",
            Rule::D002 => "wall-clock time or OS entropy outside crates/bench",
            Rule::D003 => "f64/f32 == or != comparison outside tests",
            Rule::D004 => "unwrap()/expect() in sim/routing/features library code",
            Rule::D005 => "#[allow(...)] without a justification comment",
            Rule::D006 => "panic site reachable from Simulator::run event dispatch or predict_row",
            Rule::D007 => {
                "collection grown on the event path with no eviction anywhere in its type"
            }
            Rule::D008 => "allocation reachable from the zero-alloc predict/score path",
            Rule::D009 => {
                "f64 reduction over parallel/chunked results without a documented combine order"
            }
            Rule::D010 => "truncating integer cast on a wide id/index/time value on a hot path",
            Rule::D011 => "guard held across stream I/O in the serving crate",
            Rule::D012 => {
                "tainted value used as an allocation size without a dominating bound check"
            }
            Rule::D013 => "tainted value used in slice indexing or wrapping/unchecked arithmetic",
            Rule::D014 => "lock-order cycle or lock held across a call reaching blocking I/O",
        }
    }

    /// The fix-it hint printed with each finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D001 => "use manet_sim::det::{DetMap, DetSet} (ordered iteration) or IndexedMap (hot lookups); if order provably cannot escape, annotate `// audit: allow(D001, reason = \"...\")`",
            Rule::D002 => "derive all randomness from the scenario seed (SimRng streams) and all time from SimTime; benches belong in crates/bench",
            Rule::D003 => "compare with f64::to_bits()/total_cmp for exact identity, or an explicit epsilon for tolerance",
            Rule::D004 => "restructure with let-else/match so malformed input degrades gracefully; a documented panic contract needs `// audit: allow(D004, reason = \"...\")`",
            Rule::D005 => "add a same-line or preceding-line comment explaining why the lint is suppressed",
            Rule::D006 => "degrade gracefully with let-else/get(); an invariant the caller upholds needs `// audit: allow(D006, reason = \"...\")` (a justified allow(D004) also covers the site)",
            Rule::D007 => "bound the collection like FloodAgent's RREQ memory (time horizon + hard cap) or evict in the same type; a by-design full-retention sink needs `// audit: allow(D007, reason = \"...\")`",
            Rule::D008 => "pre-size and reuse caller-owned buffers (scratch pattern); a cold-path or setup allocation needs `// audit: allow(D008, reason = \"...\")`",
            Rule::D009 => "make the combine order canonical (ordered left-fold over map_chunks output, joins in spawn order) and document it with `// audit: allow(D009, reason = \"...\")` stating why the order is thread-count invariant",
            Rule::D010 => "use `Target::try_from(x)` and handle the error (`cfa-audit --fix` rewrites simple sites), or document the range invariant with `// audit: allow(D010, reason = \"...\")`",
            Rule::D011 => "drop the guard (`drop(g)`) before stream I/O; the Condvar wait loop is exempt by construction",
            Rule::D012 => "validate the value against a cap before sizing an allocation with it — compare against a limit, go through a validated newtype like FrameLen, or use try_into/checked ops; a proven bound needs `// audit: allow(D012, reason = \"...\")`",
            Rule::D013 => "bound-check the value before indexing (get()/get_mut() degrade gracefully) and replace wrapping/unchecked arithmetic on untrusted input with checked ops; a proven bound needs `// audit: allow(D013, reason = \"...\")`",
            Rule::D014 => "acquire locks in one global order everywhere and drop every guard before calling anything that can block on a socket; an intentional ordering needs `// audit: allow(D014, reason = \"...\")`",
        }
    }

    /// The rule's severity tier.
    pub fn severity(self) -> Severity {
        match self {
            Rule::D008 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Extra context (e.g. the call chain that makes a panic reachable).
    pub note: Option<String>,
    /// The rule's severity tier.
    pub severity: Severity,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.snippet
        )?;
        if let Some(n) = &self.note {
            write!(f, " [{n}]")?;
        }
        Ok(())
    }
}

/// Which crates must stay iteration-order deterministic (rule D001).
const DETERMINISTIC_ROOTS: [&str; 8] = [
    "crates/sim/",
    "crates/routing/",
    "crates/traffic/",
    "crates/attacks/",
    "crates/features/",
    "crates/core/",
    "crates/serve/",
    "src/",
];

/// Which crates count as hot-path library code for rule D004.
const HOT_PATH_ROOTS: [&str; 3] = ["crates/sim/", "crates/routing/", "crates/features/"];

fn is_under(rel: &str, roots: &[&str]) -> bool {
    roots.iter().any(|r| rel.starts_with(r))
}

/// Whether a whole file is test/bench/example collateral (exempt from the
/// library-code rules D001/D003/D004 and from the call graph).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// A parsed `audit: allow(...)` annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: Option<Rule>,
    has_reason: bool,
    line: usize,
    /// True if the annotation's line had no code, so it covers the next
    /// code line as well.
    standalone: bool,
}

/// Parses an `audit: allow(Dxxx, reason = "...")` annotation out of a
/// comment, if present.
fn parse_allow(comment: &str, line: usize, standalone: bool) -> Option<Allow> {
    // The directive must lead the comment (` // audit: allow(...)`) so
    // that prose merely *mentioning* the syntax is never parsed.
    let rest = comment.trim_start().strip_prefix("audit:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // Last close paren: the reason text may itself contain `()`.
    let close = rest.rfind(')')?;
    let args = &rest[..close];
    let mut parts = args.splitn(2, ',');
    let rule = Rule::from_id(parts.next().unwrap_or("").trim());
    let has_reason = parts
        .next()
        .map(|p| {
            let p = p.trim();
            p.strip_prefix("reason")
                .map(|r| {
                    let r = r.trim_start().trim_start_matches('=').trim();
                    // Demand an actual quoted, non-empty justification.
                    r.len() > 2 && r.starts_with('"') && r.ends_with('"')
                })
                .unwrap_or(false)
        })
        .unwrap_or(false);
    Some(Allow {
        rule,
        has_reason,
        line,
        standalone,
    })
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Finds `needle` in `hay` preceded by a non-identifier character (or the
/// start of the line).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let ok_before = at == 0 || !is_ident_char(hay.as_bytes()[at - 1]);
        if ok_before {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// Extracts the identifier immediately before `pos` in `code`.
fn ident_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in a file's code lines.
fn collect_hash_bindings(code_lines: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for code in code_lines {
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `name: [path::]HashMap<..>` (field, param or annotated let).
        let mut search = 0;
        while let Some(pos) = code[search..].find(':') {
            let at = search + pos;
            let after = code[at + 1..].trim_start();
            if (after.starts_with("HashMap") || after.starts_with("HashSet"))
                || (after.starts_with("std::collections::Hash"))
            {
                if let Some(name) = ident_before(code, at) {
                    if name != "let" && !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            search = at + 1;
        }
        // `let [mut] name = ... HashMap::new() / HashSet::with_capacity ...`
        if code.contains("HashMap::") || code.contains("HashSet::") {
            if let Some(let_pos) = code.find("let ") {
                let after_let = code[let_pos + 4..].trim_start();
                let after_let = after_let
                    .strip_prefix("mut ")
                    .unwrap_or(after_let)
                    .trim_start();
                let end = after_let
                    .find(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
                    .unwrap_or(after_let.len());
                let name = &after_let[..end];
                if !name.is_empty() && !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_keys()",
    ".into_values()",
];

/// Checks a code line for unordered iteration over any of `names`.
fn d001_hit(code: &str, names: &[String]) -> bool {
    for name in names {
        // `name.iter()` etc — the receiver's last path segment is `name`.
        for m in ITER_METHODS {
            let pat = format!("{name}{m}");
            if contains_token(code, &pat) {
                return true;
            }
        }
        if contains_token(code, &format!("{name}.into_iter()")) {
            return true;
        }
        // `for x in &name` / `for x in &mut name` / `for x in name`.
        if let Some(in_pos) = code.find(" in ") {
            if code.trim_start().starts_with("for ") || code.contains(" for ") {
                let target = code[in_pos + 4..].trim_start();
                let target = target.strip_prefix('&').unwrap_or(target);
                let target = target.strip_prefix("mut ").unwrap_or(target).trim_start();
                // Strip leading path qualifiers like `self.`.
                let head_end = target
                    .find(|c: char| {
                        !(c == '_' || c == '.' || c == ':' || c.is_ascii_alphanumeric())
                    })
                    .unwrap_or(target.len());
                let head = &target[..head_end];
                let last = head.rsplit(['.', ':']).next().unwrap_or(head);
                if last == name {
                    return true;
                }
            }
        }
    }
    false
}

const D002_TOKENS: [&str; 4] = ["SystemTime", "Instant::now", "thread_rng", "RandomState"];

/// Collects identifiers bound to `f32`/`f64` in a file's code lines.
fn collect_float_bindings(code_lines: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for code in code_lines {
        if !(code.contains("f64") || code.contains("f32")) {
            continue;
        }
        let mut search = 0;
        while let Some(pos) = code[search..].find(':') {
            let at = search + pos;
            let after = code[at + 1..].trim_start();
            let is_float = ["f64", "f32"].iter().any(|t| {
                after
                    .strip_prefix(t)
                    .is_some_and(|rest| rest.is_empty() || !is_ident_char(rest.as_bytes()[0]))
            });
            if is_float {
                if let Some(name) = ident_before(code, at) {
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            search = at + 1;
        }
    }
    names
}

fn looks_like_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut seen_dot = false;
    let mut seen_digit = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => seen_digit = true,
            '.' if !seen_dot => seen_dot = true,
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

/// Checks a code line for a float `==`/`!=` comparison.
fn d003_hit(code: &str, float_names: &[String]) -> bool {
    for op in ["==", "!="] {
        let mut search = 0;
        while let Some(pos) = code[search..].find(op) {
            let at = search + pos;
            let lhs = code[..at].trim_end();
            let rhs = code[at + 2..].trim_start();
            let lhs_tok = lhs
                .rsplit(|c: char| c.is_whitespace() || "(,{[".contains(c))
                .next()
                .unwrap_or("");
            let rhs_tok = rhs
                .split(|c: char| c.is_whitespace() || ")],;{".contains(c))
                .next()
                .unwrap_or("");
            let float_side = |tok: &str| {
                looks_like_float_literal(tok)
                    || float_names.iter().any(|n| {
                        tok == n
                            || tok.ends_with(&format!(".{n}"))
                            || tok == format!("*{n}").as_str()
                    })
            };
            if float_side(lhs_tok) || float_side(rhs_tok) {
                return true;
            }
            search = at + 2;
        }
    }
    false
}

/// The lexical analysis of one file: findings plus the context the
/// interprocedural layer reuses (allows, raw lines).
struct FileScan {
    findings: Vec<Finding>,
    /// `(rule, 0-based line)` pairs carrying a justified allow.
    allowed_lines: Vec<(Rule, usize)>,
}

/// Scans one file's source text with the lexical rules (D001–D005).
/// `rel` is the workspace-relative path with forward slashes; it selects
/// which rules apply.
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    scan_source_inner(rel, source).findings
}

fn scan_source_inner(rel: &str, source: &str) -> FileScan {
    let mut findings = Vec::new();
    let in_det_crate = is_under(rel, &DETERMINISTIC_ROOTS);
    let in_hot_crate = is_under(rel, &HOT_PATH_ROOTS);
    let in_bench = rel.starts_with("crates/bench/");
    let file_is_test = is_test_path(rel);

    // Front end: the real lexer splits every line into code and comment
    // channels (raw strings, nested block comments, lifetimes and char
    // literals all handled by `lexer::lex`).
    let masked = lexer::mask_lines(source);
    let mut code_lines: Vec<String> = Vec::with_capacity(masked.len());
    let mut comments: Vec<String> = Vec::with_capacity(masked.len());
    let mut allows: Vec<Allow> = Vec::new();
    let mut test_tail_start = usize::MAX;
    for (idx, (code, comment)) in masked.into_iter().enumerate() {
        if test_tail_start == usize::MAX && code.contains("#[cfg(test)]") {
            test_tail_start = idx;
        }
        let standalone = code.trim().is_empty();
        if let Some(allow) = parse_allow(&comment, idx, standalone) {
            allows.push(allow);
        }
        code_lines.push(code);
        comments.push(comment);
    }
    let hash_names = collect_hash_bindings(&code_lines);
    let float_names = collect_float_bindings(&code_lines);

    // Expand justified allows into per-line suppression slots.
    let mut allowed_lines: Vec<(Rule, usize)> = Vec::new();
    for a in &allows {
        if let (Some(rule), true) = (a.rule, a.has_reason) {
            allowed_lines.push((rule, a.line));
            if a.standalone {
                allowed_lines.push((rule, a.line + 1));
            }
        }
    }
    let allowed = |rule: Rule, line: usize| -> bool {
        allowed_lines.iter().any(|&(r, l)| r == rule && l == line)
    };

    // Malformed allows are findings in their own right: the escape hatch
    // requires both a known rule id and a written reason.
    for a in &allows {
        let (rule, note) = match (a.rule, a.has_reason) {
            (Some(_), true) => continue,
            (Some(r), false) => (
                r,
                "audit allow without a reason — the escape hatch requires reason = \"...\"",
            ),
            (None, _) => (Rule::D005, "audit allow names an unknown rule id"),
        };
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: a.line + 1,
            snippet: source.lines().nth(a.line).unwrap_or("").trim().to_string(),
            note: Some(note.to_string()),
            severity: rule.severity(),
        });
    }

    for (idx, code) in code_lines.iter().enumerate() {
        let in_test = file_is_test || idx >= test_tail_start;
        let raw_snippet = || source.lines().nth(idx).unwrap_or("").trim().to_string();
        let push = |rule: Rule, findings: &mut Vec<Finding>| {
            if !allowed(rule, idx) {
                findings.push(Finding {
                    rule,
                    file: rel.to_string(),
                    line: idx + 1,
                    snippet: raw_snippet(),
                    note: None,
                    severity: rule.severity(),
                });
            }
        };

        if in_det_crate && !in_test && d001_hit(code, &hash_names) {
            push(Rule::D001, &mut findings);
        }
        if !in_bench && D002_TOKENS.iter().any(|t| contains_token(code, t)) {
            push(Rule::D002, &mut findings);
        }
        if !in_test && d003_hit(code, &float_names) {
            push(Rule::D003, &mut findings);
        }
        if in_hot_crate && !in_test && (code.contains(".unwrap()") || code.contains(".expect(")) {
            push(Rule::D004, &mut findings);
        }
        if code.contains("#[allow(") || code.contains("#![allow(") {
            let comment_here = !comments[idx].trim().is_empty();
            let comment_above = idx > 0
                && source
                    .lines()
                    .nth(idx - 1)
                    .map(|l| l.trim_start().starts_with("//"))
                    .unwrap_or(false);
            if !comment_here && !comment_above {
                push(Rule::D005, &mut findings);
            }
        }
    }
    FileScan {
        findings,
        allowed_lines,
    }
}

/// Recursively collects the `.rs` files under `root`, skipping build
/// output and VCS internals, in sorted (deterministic) order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` holds deliberately-violating test trees; they are
            // scanned by pointing the binary at them directly.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Size of a completed scan, for the report footer and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Total source lines across those files.
    pub lines: usize,
    /// Function definitions mined into the call graph.
    pub functions: usize,
}

/// Per-file output of the parallel scan phase, merged in input order.
struct FileResult {
    rel: String,
    lines: usize,
    findings: Vec<Finding>,
    fns: Vec<parser::FnDef>,
    ctx: interproc::FileCtx,
    err: Option<std::io::Error>,
}

/// Scans every `.rs` file under `root` (a workspace checkout) with all
/// four layers — the lexical rules per file, the dataflow pass per
/// function body, then the interprocedural reachability and taint rules
/// over the workspace call graph — and returns all findings (ordered by
/// file, line, then rule) plus scan-size statistics.
///
/// The per-file phase (read + lex + parse + line rules) fans out over
/// `threads` scoped threads via [`par::map_chunks`]; results are merged
/// in input order and the graph phases stay serial, so the output is
/// byte-identical at every thread count.
pub fn scan_tree_with_stats_at(
    root: &Path,
    threads: usize,
) -> std::io::Result<(Vec<Finding>, ScanStats)> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let per_file = par::map_chunks(threads, files.len(), |range| {
        let mut out = Vec::with_capacity(range.len());
        for i in range {
            let path = &files[i];
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    out.push(FileResult {
                        rel,
                        lines: 0,
                        findings: Vec::new(),
                        fns: Vec::new(),
                        ctx: interproc::FileCtx {
                            lines: Vec::new(),
                            allowed: Vec::new(),
                        },
                        err: Some(e),
                    });
                    continue;
                }
            };
            let scan = scan_source_inner(&rel, &source);
            let fns = parser::parse_file(&rel, &source, is_test_path(&rel));
            out.push(FileResult {
                lines: source.lines().count(),
                findings: scan.findings,
                fns,
                ctx: interproc::FileCtx {
                    lines: source.lines().map(str::to_string).collect(),
                    allowed: scan.allowed_lines,
                },
                rel,
                err: None,
            });
        }
        out
    });
    let mut findings = Vec::new();
    let mut fns: Vec<parser::FnDef> = Vec::new();
    let mut contexts: BTreeMap<String, interproc::FileCtx> = BTreeMap::new();
    let mut stats = ScanStats::default();
    for file in per_file {
        if let Some(e) = file.err {
            return Err(e);
        }
        stats.files += 1;
        stats.lines += file.lines;
        findings.extend(file.findings);
        fns.extend(file.fns);
        contexts.insert(file.rel, file.ctx);
    }
    stats.functions = fns.len();
    let graph = graph::CallGraph::build(fns);
    findings.extend(interproc::check(&graph, &contexts));
    findings.extend(taint::check(&graph, &contexts));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.snippet.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.snippet.as_str(),
        ))
    });
    Ok((findings, stats))
}

/// [`scan_tree_with_stats_at`] on a single thread.
pub fn scan_tree_with_stats(root: &Path) -> std::io::Result<(Vec<Finding>, ScanStats)> {
    scan_tree_with_stats_at(root, 1)
}

/// [`scan_tree_with_stats`] without the statistics.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    scan_tree_with_stats(root).map(|(findings, _)| findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        scan_source(rel, src).into_iter().map(|f| f.rule).collect()
    }

    const DET: &str = "crates/sim/src/fixture.rs";

    // --- D001 -----------------------------------------------------------

    #[test]
    fn d001_flags_hashmap_iteration() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n";
        assert_eq!(rules(DET, src), vec![Rule::D001]);
    }

    #[test]
    fn d001_flags_for_loop_over_hashset() {
        let src = "fn f() {\n    let mut seen = HashSet::new();\n    seen.insert(1u32);\n    for x in &seen { println!(\"{x}\"); }\n}\n";
        assert_eq!(rules(DET, src), vec![Rule::D001]);
    }

    #[test]
    fn d001_allowed_with_reason() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   // audit: allow(D001, reason = \"summing; order cannot escape\")\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d001_allow_without_reason_is_reported() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   // audit: allow(D001)\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        let got = rules(DET, src);
        // Both the malformed allow and the unsuppressed finding surface.
        assert_eq!(got, vec![Rule::D001, Rule::D001]);
    }

    #[test]
    fn d001_clean_on_detmap_and_lookups() {
        let src = "struct S { m: DetMap<u32, u32>, h: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n\
                   fn g(s: &S) -> Option<&u32> { s.h.get(&3) }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d001_ignores_non_deterministic_crates() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize { s.m.keys().count() }\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    // --- D002 -----------------------------------------------------------

    #[test]
    fn d002_flags_wall_clock_and_entropy() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n\
                   fn g() { let r = rand::thread_rng(); }\n";
        assert_eq!(
            rules("crates/ml/src/fixture.rs", src),
            vec![Rule::D002, Rule::D002]
        );
    }

    #[test]
    fn d002_allowed_with_reason() {
        let src = "// audit: allow(D002, reason = \"bench harness measures wall time\")\n\
                   fn f() { let t = Instant::now(); }\n";
        assert!(rules("crates/criterion/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d002_clean_in_bench_crate() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(rules("crates/bench/src/fixture.rs", src).is_empty());
    }

    // --- D003 -----------------------------------------------------------

    #[test]
    fn d003_flags_float_literal_equality() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(rules(DET, src), vec![Rule::D003]);
    }

    #[test]
    fn d003_flags_typed_float_identifier() {
        let src = "fn f(score: f64, threshold: f64) -> bool { score != threshold }\n";
        assert_eq!(rules(DET, src), vec![Rule::D003]);
    }

    #[test]
    fn d003_allowed_with_reason() {
        let src = "// audit: allow(D003, reason = \"exact sentinel propagated unchanged\")\n\
                   fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d003_clean_on_to_bits_and_integers() {
        let src = "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }\n\
                   fn g(n: usize) -> bool { n == 3 }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d003_ignores_test_tail() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.5 }\n}\n";
        assert!(rules(DET, src).is_empty());
    }

    // --- D004 -----------------------------------------------------------

    #[test]
    fn d004_flags_unwrap_in_hot_crate() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() }\n";
        assert_eq!(
            rules("crates/routing/src/fixture.rs", src),
            vec![Rule::D004]
        );
    }

    #[test]
    fn d004_allowed_with_reason_on_same_line() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() } // audit: allow(D004, reason = \"caller guarantees non-empty\")\n";
        assert!(rules("crates/routing/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d004_clean_outside_hot_crates_and_tests() {
        let hot_test = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(rules("crates/routing/src/fixture.rs", hot_test).is_empty());
        let cold = "fn f() { Some(1).unwrap(); }\n";
        assert!(rules("crates/ml/src/fixture.rs", cold).is_empty());
    }

    // --- D005 -----------------------------------------------------------

    #[test]
    fn d005_flags_bare_allow_attribute() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(rules("crates/ml/src/fixture.rs", src), vec![Rule::D005]);
    }

    #[test]
    fn d005_clean_with_same_line_justification() {
        let src = "#[allow(dead_code)] // kept for the serialization layout\nfn f() {}\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d005_clean_with_preceding_comment() {
        let src = "// the indices walk three arrays in lockstep\n#[allow(clippy::needless_range_loop)]\nfn f() {}\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    // --- engine details -------------------------------------------------

    #[test]
    fn string_literals_do_not_trigger_rules() {
        let src = "fn f() -> &'static str { \"call .unwrap() or thread_rng here\" }\n";
        assert!(rules("crates/routing/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_and_nested_comments_do_not_trigger_rules() {
        // Regression for the PR 3 scanner: the raw string's `//` is not a
        // comment, its `.unwrap()` is not code, and the nested block
        // comment does not end at the first `*/`.
        let src = "fn f() -> &'static str { r#\"no // comment, v.unwrap() text\"# }\n\
                   /* outer /* v.expect(\"x\") */ still comment .unwrap() */\n\
                   fn g<'a>(x: &'a [u32]) -> &'a [u32] { x }\n";
        assert!(rules("crates/routing/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn lifetime_heavy_signatures_do_not_confuse_the_lexer() {
        // `'a` used to open a phantom char literal and swallow code.
        let src = "fn f<'a>(v: &'a mut Vec<u32>) { v.last().unwrap(); }\n";
        assert_eq!(
            rules("crates/routing/src/fixture.rs", src),
            vec![Rule::D004]
        );
    }

    #[test]
    fn findings_carry_location_and_snippet() {
        let src = "fn f(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n";
        let got = scan_source("crates/sim/src/fixture.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].snippet, "*v.last().unwrap()");
        assert_eq!(got[0].severity, Severity::Error);
    }
}
