//! # cfa-audit
//!
//! A zero-dependency determinism lint engine for the manet-cfa workspace.
//!
//! The repo's headline guarantees — PR 1's "bit-identical at any thread
//! count" ensemble and PR 2's "batch == stream bit-for-bit" equivalence —
//! rest on determinism discipline that the compiler does not enforce: one
//! careless iteration over a `HashMap`, one wall-clock read, one float
//! equality, and trace bytes silently stop being reproducible. `cfa-audit`
//! enforces that discipline statically with a lightweight line/token
//! scanner over the workspace's `.rs` files (no `syn`: the crate registry
//! is unreachable from the build hosts, so the analyzer is deliberately
//! dependency-free).
//!
//! ## Rules
//!
//! | ID   | What it flags | Where |
//! |------|---------------|-------|
//! | D001 | unordered iteration over `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`, `for _ in &map`, …) | deterministic crates (sim, routing, traffic, attacks, features, core) and the root crate |
//! | D002 | wall clock / OS entropy (`SystemTime`, `Instant::now`, `thread_rng`, `RandomState`) | everywhere except `crates/bench` |
//! | D003 | `f64`/`f32` `==`/`!=` comparisons (use `to_bits()` or an epsilon) | non-test code |
//! | D004 | `unwrap()`/`expect()` in library hot paths | non-test code of sim, routing, features |
//! | D005 | bare `#[allow(...)]` without a justification comment | everywhere |
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with a justified annotation on the same
//! line or the line above:
//!
//! ```text
//! // audit: allow(D001, reason = "summing lengths; order cannot escape")
//! ```
//!
//! The `reason` is mandatory — an allow without one is itself reported.

use std::fmt;
use std::path::{Path, PathBuf};

/// A determinism rule enforced by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered iteration over a hash-based collection.
    D001,
    /// Wall-clock time or OS entropy.
    D002,
    /// Bitwise float equality comparison.
    D003,
    /// `unwrap`/`expect` in library hot-path code.
    D004,
    /// `#[allow(...)]` without a justification comment.
    D005,
}

impl Rule {
    /// Every rule, in id order.
    pub const ALL: [Rule; 5] = [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::D005];

    /// The rule's stable identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
        }
    }

    /// Parses an identifier like `D001`.
    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description of what the rule protects.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "unordered iteration over HashMap/HashSet in a deterministic crate",
            Rule::D002 => "wall-clock time or OS entropy outside crates/bench",
            Rule::D003 => "f64/f32 == or != comparison outside tests",
            Rule::D004 => "unwrap()/expect() in sim/routing/features library code",
            Rule::D005 => "#[allow(...)] without a justification comment",
        }
    }

    /// The fix-it hint printed with each finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D001 => "use manet_sim::det::{DetMap, DetSet} (ordered iteration) or IndexedMap (hot lookups); if order provably cannot escape, annotate `// audit: allow(D001, reason = \"...\")`",
            Rule::D002 => "derive all randomness from the scenario seed (SimRng streams) and all time from SimTime; benches belong in crates/bench",
            Rule::D003 => "compare with f64::to_bits()/total_cmp for exact identity, or an explicit epsilon for tolerance",
            Rule::D004 => "restructure with let-else/match so malformed input degrades gracefully; a documented panic contract needs `// audit: allow(D004, reason = \"...\")`",
            Rule::D005 => "add a same-line or preceding-line comment explaining why the lint is suppressed",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Extra context (e.g. "allow without reason").
    pub note: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.snippet
        )?;
        if let Some(n) = &self.note {
            write!(f, " [{n}]")?;
        }
        Ok(())
    }
}

/// Which crates must stay iteration-order deterministic (rule D001).
const DETERMINISTIC_ROOTS: [&str; 7] = [
    "crates/sim/",
    "crates/routing/",
    "crates/traffic/",
    "crates/attacks/",
    "crates/features/",
    "crates/core/",
    "src/",
];

/// Which crates count as hot-path library code for rule D004.
const HOT_PATH_ROOTS: [&str; 3] = ["crates/sim/", "crates/routing/", "crates/features/"];

fn is_under(rel: &str, roots: &[&str]) -> bool {
    roots.iter().any(|r| rel.starts_with(r))
}

/// Whether a whole file is test/bench/example collateral (exempt from the
/// library-code rules D001/D003/D004).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// A parsed `audit: allow(...)` annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: Option<Rule>,
    has_reason: bool,
    line: usize,
    /// True if the annotation's line had no code, so it covers the next
    /// code line as well.
    standalone: bool,
}

/// Lexer state carried across lines: inside a block comment, or inside a
/// multi-line string literal (`close` is the terminator; `cooked` strings
/// process backslash escapes, raw ones don't).
#[derive(Default)]
struct SplitState {
    in_block_comment: bool,
    in_string: Option<(String, bool)>,
}

/// Strips string/char literals and comments from one line, resuming block
/// comments and multi-line strings across lines. Returns
/// `(code, comment_text)`.
fn split_code_and_comment(line: &str, state: &mut SplitState) -> (String, String) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    // Resume a string literal left open on a previous line.
    if let Some((close, cooked)) = state.in_string.take() {
        loop {
            if i >= bytes.len() {
                state.in_string = Some((close, cooked));
                return (code, comment);
            }
            if cooked && bytes[i] == b'\\' {
                i += 2;
                continue;
            }
            if line[i..].starts_with(close.as_str()) {
                i += close.len();
                code.push('"');
                break;
            }
            i += 1;
        }
    }
    while i < bytes.len() {
        if state.in_block_comment {
            if line[i..].starts_with("*/") {
                state.in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let rest = &line[i..];
        if let Some(text) = rest.strip_prefix("//") {
            comment.push_str(text);
            break;
        }
        if rest.starts_with("/*") {
            state.in_block_comment = true;
            i += 2;
            continue;
        }
        if rest.starts_with("r\"") || rest.starts_with("r#\"") {
            let (open, close) = if rest.starts_with("r#\"") {
                (3, "\"#")
            } else {
                (2, "\"")
            };
            match rest[open..].find(close) {
                Some(end) => {
                    code.push('"');
                    i += open + end + close.len();
                }
                None => {
                    state.in_string = Some((close.to_string(), false));
                    return (code, comment);
                }
            }
            continue;
        }
        if bytes[i] == b'"' {
            // Cooked string with escapes; may continue onto further lines.
            i += 1;
            loop {
                if i >= bytes.len() {
                    state.in_string = Some(("\"".to_string(), true));
                    return (code, comment);
                }
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            code.push('"');
            continue;
        }
        if bytes[i] == b'\'' {
            // Char literal vs lifetime: a literal closes within 3 bytes.
            let lit_len = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                line[i + 2..].find('\'').map(|p| p + 3)
            } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                Some(3)
            } else {
                None
            };
            if let Some(l) = lit_len {
                code.push_str("' '");
                i += l;
            } else {
                code.push('\'');
                i += 1;
            }
            continue;
        }
        code.push(bytes[i] as char);
        i += 1;
    }
    (code, comment)
}

/// Parses an `audit: allow(Dxxx, reason = "...")` annotation out of a
/// comment, if present.
fn parse_allow(comment: &str, line: usize, standalone: bool) -> Option<Allow> {
    // The directive must lead the comment (` // audit: allow(...)`) so
    // that prose merely *mentioning* the syntax is never parsed.
    let rest = comment.trim_start().strip_prefix("audit:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // Last close paren: the reason text may itself contain `()`.
    let close = rest.rfind(')')?;
    let args = &rest[..close];
    let mut parts = args.splitn(2, ',');
    let rule = Rule::from_id(parts.next().unwrap_or("").trim());
    let has_reason = parts
        .next()
        .map(|p| {
            let p = p.trim();
            p.strip_prefix("reason")
                .map(|r| {
                    let r = r.trim_start().trim_start_matches('=').trim();
                    // Demand an actual quoted, non-empty justification.
                    r.len() > 2 && r.starts_with('"') && r.ends_with('"')
                })
                .unwrap_or(false)
        })
        .unwrap_or(false);
    Some(Allow {
        rule,
        has_reason,
        line,
        standalone,
    })
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Finds `needle` in `hay` preceded by a non-identifier character (or the
/// start of the line).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let ok_before = at == 0 || !is_ident_char(hay.as_bytes()[at - 1]);
        if ok_before {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// Extracts the identifier immediately before `pos` in `code`.
fn ident_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&code[start..end])
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in a file's code lines.
fn collect_hash_bindings(code_lines: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for code in code_lines {
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `name: [path::]HashMap<..>` (field, param or annotated let).
        let mut search = 0;
        while let Some(pos) = code[search..].find(':') {
            let at = search + pos;
            let after = code[at + 1..].trim_start();
            if (after.starts_with("HashMap") || after.starts_with("HashSet"))
                || (after.starts_with("std::collections::Hash"))
            {
                if let Some(name) = ident_before(code, at) {
                    if name != "let" && !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            search = at + 1;
        }
        // `let [mut] name = ... HashMap::new() / HashSet::with_capacity ...`
        if code.contains("HashMap::") || code.contains("HashSet::") {
            if let Some(let_pos) = code.find("let ") {
                let after_let = code[let_pos + 4..].trim_start();
                let after_let = after_let
                    .strip_prefix("mut ")
                    .unwrap_or(after_let)
                    .trim_start();
                let end = after_let
                    .find(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
                    .unwrap_or(after_let.len());
                let name = &after_let[..end];
                if !name.is_empty() && !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_keys()",
    ".into_values()",
];

/// Checks a code line for unordered iteration over any of `names`.
fn d001_hit(code: &str, names: &[String]) -> bool {
    for name in names {
        // `name.iter()` etc — the receiver's last path segment is `name`.
        for m in ITER_METHODS {
            let pat = format!("{name}{m}");
            if contains_token(code, &pat) {
                return true;
            }
        }
        if contains_token(code, &format!("{name}.into_iter()")) {
            return true;
        }
        // `for x in &name` / `for x in &mut name` / `for x in name`.
        if let Some(in_pos) = code.find(" in ") {
            if code.trim_start().starts_with("for ") || code.contains(" for ") {
                let target = code[in_pos + 4..].trim_start();
                let target = target.strip_prefix('&').unwrap_or(target);
                let target = target.strip_prefix("mut ").unwrap_or(target).trim_start();
                // Strip leading path qualifiers like `self.`.
                let head_end = target
                    .find(|c: char| {
                        !(c == '_' || c == '.' || c == ':' || c.is_ascii_alphanumeric())
                    })
                    .unwrap_or(target.len());
                let head = &target[..head_end];
                let last = head.rsplit(['.', ':']).next().unwrap_or(head);
                if last == name {
                    return true;
                }
            }
        }
    }
    false
}

const D002_TOKENS: [&str; 4] = ["SystemTime", "Instant::now", "thread_rng", "RandomState"];

/// Collects identifiers bound to `f32`/`f64` in a file's code lines.
fn collect_float_bindings(code_lines: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for code in code_lines {
        if !(code.contains("f64") || code.contains("f32")) {
            continue;
        }
        let mut search = 0;
        while let Some(pos) = code[search..].find(':') {
            let at = search + pos;
            let after = code[at + 1..].trim_start();
            let is_float = ["f64", "f32"].iter().any(|t| {
                after
                    .strip_prefix(t)
                    .is_some_and(|rest| rest.is_empty() || !is_ident_char(rest.as_bytes()[0]))
            });
            if is_float {
                if let Some(name) = ident_before(code, at) {
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            search = at + 1;
        }
    }
    names
}

fn looks_like_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut seen_dot = false;
    let mut seen_digit = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => seen_digit = true,
            '.' if !seen_dot => seen_dot = true,
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

/// Checks a code line for a float `==`/`!=` comparison.
fn d003_hit(code: &str, float_names: &[String]) -> bool {
    for op in ["==", "!="] {
        let mut search = 0;
        while let Some(pos) = code[search..].find(op) {
            let at = search + pos;
            // Skip `!==`-like and `<=`/`>=`-adjacent artifacts and pattern
            // arrows; `==`/`!=` surrounded by operator chars isn't a float
            // comparison either way.
            let lhs = code[..at].trim_end();
            let rhs = code[at + 2..].trim_start();
            let lhs_tok = lhs
                .rsplit(|c: char| c.is_whitespace() || "(,{[".contains(c))
                .next()
                .unwrap_or("");
            let rhs_tok = rhs
                .split(|c: char| c.is_whitespace() || ")],;{".contains(c))
                .next()
                .unwrap_or("");
            let float_side = |tok: &str| {
                looks_like_float_literal(tok)
                    || float_names.iter().any(|n| {
                        tok == n
                            || tok.ends_with(&format!(".{n}"))
                            || tok == format!("*{n}").as_str()
                    })
            };
            if float_side(lhs_tok) || float_side(rhs_tok) {
                return true;
            }
            search = at + 2;
        }
    }
    false
}

/// Scans one file's source text. `rel` is the workspace-relative path with
/// forward slashes; it selects which rules apply.
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_det_crate = is_under(rel, &DETERMINISTIC_ROOTS);
    let in_hot_crate = is_under(rel, &HOT_PATH_ROOTS);
    let in_bench = rel.starts_with("crates/bench/");
    let file_is_test = is_test_path(rel);

    // First pass: split every line into code and comment, find the
    // `#[cfg(test)]` tail, and collect allow annotations and bindings.
    let mut code_lines: Vec<String> = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut test_tail_start = usize::MAX;
    let mut state = SplitState::default();
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment) = split_code_and_comment(raw, &mut state);
        if test_tail_start == usize::MAX && code.contains("#[cfg(test)]") {
            test_tail_start = idx;
        }
        let standalone = code.trim().is_empty();
        if let Some(allow) = parse_allow(&comment, idx, standalone) {
            allows.push(allow);
        }
        code_lines.push(code);
        comments.push(comment);
    }
    let hash_names = collect_hash_bindings(&code_lines);
    let float_names = collect_float_bindings(&code_lines);

    let allowed = |rule: Rule, line: usize| -> bool {
        allows.iter().any(|a| {
            a.rule == Some(rule)
                && a.has_reason
                && (a.line == line || (a.standalone && a.line + 1 == line))
        })
    };

    // Malformed allows are findings in their own right: the escape hatch
    // requires both a known rule id and a written reason.
    for a in &allows {
        let (rule, note) = match (a.rule, a.has_reason) {
            (Some(_), true) => continue,
            (Some(r), false) => (
                r,
                "audit allow without a reason — the escape hatch requires reason = \"...\"",
            ),
            (None, _) => (Rule::D005, "audit allow names an unknown rule id"),
        };
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: a.line + 1,
            snippet: source.lines().nth(a.line).unwrap_or("").trim().to_string(),
            note: Some(note.to_string()),
        });
    }

    for (idx, code) in code_lines.iter().enumerate() {
        let in_test = file_is_test || idx >= test_tail_start;
        let raw_snippet = || source.lines().nth(idx).unwrap_or("").trim().to_string();
        let push = |rule: Rule, findings: &mut Vec<Finding>| {
            if !allowed(rule, idx) {
                findings.push(Finding {
                    rule,
                    file: rel.to_string(),
                    line: idx + 1,
                    snippet: raw_snippet(),
                    note: None,
                });
            }
        };

        if in_det_crate && !in_test && d001_hit(code, &hash_names) {
            push(Rule::D001, &mut findings);
        }
        if !in_bench && D002_TOKENS.iter().any(|t| contains_token(code, t)) {
            push(Rule::D002, &mut findings);
        }
        if !in_test && d003_hit(code, &float_names) {
            push(Rule::D003, &mut findings);
        }
        if in_hot_crate && !in_test && (code.contains(".unwrap()") || code.contains(".expect(")) {
            push(Rule::D004, &mut findings);
        }
        if code.contains("#[allow(") || code.contains("#![allow(") {
            let comment_here = !comments[idx].trim().is_empty();
            let comment_above = idx > 0
                && source
                    .lines()
                    .nth(idx - 1)
                    .map(|l| l.trim_start().starts_with("//"))
                    .unwrap_or(false);
            if !comment_here && !comment_above {
                push(Rule::D005, &mut findings);
            }
        }
    }
    findings
}

/// Recursively collects the `.rs` files under `root`, skipping build
/// output and VCS internals, in sorted (deterministic) order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` holds deliberately-violating test trees; they are
            // scanned by pointing the binary at them directly.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (a workspace checkout) and returns
/// all findings, ordered by file then line.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        findings.extend(scan_source(&rel, &source));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<Rule> {
        scan_source(rel, src).into_iter().map(|f| f.rule).collect()
    }

    const DET: &str = "crates/sim/src/fixture.rs";

    // --- D001 -----------------------------------------------------------

    #[test]
    fn d001_flags_hashmap_iteration() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n";
        assert_eq!(rules(DET, src), vec![Rule::D001]);
    }

    #[test]
    fn d001_flags_for_loop_over_hashset() {
        let src = "fn f() {\n    let mut seen = HashSet::new();\n    seen.insert(1u32);\n    for x in &seen { println!(\"{x}\"); }\n}\n";
        assert_eq!(rules(DET, src), vec![Rule::D001]);
    }

    #[test]
    fn d001_allowed_with_reason() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   // audit: allow(D001, reason = \"summing; order cannot escape\")\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d001_allow_without_reason_is_reported() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   // audit: allow(D001)\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        let got = rules(DET, src);
        // Both the malformed allow and the unsuppressed finding surface.
        assert_eq!(got, vec![Rule::D001, Rule::D001]);
    }

    #[test]
    fn d001_clean_on_detmap_and_lookups() {
        let src = "struct S { m: DetMap<u32, u32>, h: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Vec<u32> { s.m.values().copied().collect() }\n\
                   fn g(s: &S) -> Option<&u32> { s.h.get(&3) }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d001_ignores_non_deterministic_crates() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize { s.m.keys().count() }\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    // --- D002 -----------------------------------------------------------

    #[test]
    fn d002_flags_wall_clock_and_entropy() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n\
                   fn g() { let r = rand::thread_rng(); }\n";
        assert_eq!(
            rules("crates/ml/src/fixture.rs", src),
            vec![Rule::D002, Rule::D002]
        );
    }

    #[test]
    fn d002_allowed_with_reason() {
        let src = "// audit: allow(D002, reason = \"bench harness measures wall time\")\n\
                   fn f() { let t = Instant::now(); }\n";
        assert!(rules("crates/criterion/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d002_clean_in_bench_crate() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(rules("crates/bench/src/fixture.rs", src).is_empty());
    }

    // --- D003 -----------------------------------------------------------

    #[test]
    fn d003_flags_float_literal_equality() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(rules(DET, src), vec![Rule::D003]);
    }

    #[test]
    fn d003_flags_typed_float_identifier() {
        let src = "fn f(score: f64, threshold: f64) -> bool { score != threshold }\n";
        assert_eq!(rules(DET, src), vec![Rule::D003]);
    }

    #[test]
    fn d003_allowed_with_reason() {
        let src = "// audit: allow(D003, reason = \"exact sentinel propagated unchanged\")\n\
                   fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d003_clean_on_to_bits_and_integers() {
        let src = "fn f(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }\n\
                   fn g(n: usize) -> bool { n == 3 }\n";
        assert!(rules(DET, src).is_empty());
    }

    #[test]
    fn d003_ignores_test_tail() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.5 }\n}\n";
        assert!(rules(DET, src).is_empty());
    }

    // --- D004 -----------------------------------------------------------

    #[test]
    fn d004_flags_unwrap_in_hot_crate() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() }\n";
        assert_eq!(
            rules("crates/routing/src/fixture.rs", src),
            vec![Rule::D004]
        );
    }

    #[test]
    fn d004_allowed_with_reason_on_same_line() {
        let src = "fn f(v: &[u32]) -> u32 { *v.last().unwrap() } // audit: allow(D004, reason = \"caller guarantees non-empty\")\n";
        assert!(rules("crates/routing/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d004_clean_outside_hot_crates_and_tests() {
        let hot_test = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(rules("crates/routing/src/fixture.rs", hot_test).is_empty());
        let cold = "fn f() { Some(1).unwrap(); }\n";
        assert!(rules("crates/ml/src/fixture.rs", cold).is_empty());
    }

    // --- D005 -----------------------------------------------------------

    #[test]
    fn d005_flags_bare_allow_attribute() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(rules("crates/ml/src/fixture.rs", src), vec![Rule::D005]);
    }

    #[test]
    fn d005_clean_with_same_line_justification() {
        let src = "#[allow(dead_code)] // kept for the serialization layout\nfn f() {}\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn d005_clean_with_preceding_comment() {
        let src = "// the indices walk three arrays in lockstep\n#[allow(clippy::needless_range_loop)]\nfn f() {}\n";
        assert!(rules("crates/ml/src/fixture.rs", src).is_empty());
    }

    // --- engine details -------------------------------------------------

    #[test]
    fn string_literals_do_not_trigger_rules() {
        let src = "fn f() -> &'static str { \"call .unwrap() or thread_rng here\" }\n";
        assert!(rules("crates/routing/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_location_and_snippet() {
        let src = "fn f(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n";
        let got = scan_source("crates/sim/src/fixture.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert_eq!(got[0].snippet, "*v.last().unwrap()");
    }
}
