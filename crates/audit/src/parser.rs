//! Item-level parser on top of the [`lexer`](crate::lexer): extracts `fn`
//! definitions with their module / `impl` / `trait` ownership, and mines
//! each body for the facts the interprocedural rules need — call
//! expressions (free, method, path-qualified, macro), panic sites
//! (`panic!` family, `unwrap`/`expect`, slice indexing), allocation sites
//! (`Vec::new`, `to_vec`, `clone`, `format!`, …), and growth/eviction
//! method calls on `self` fields.
//!
//! This is deliberately not a full Rust grammar: it tracks brace nesting,
//! angle-bracket balance in `impl` headers, and attribute spans, which is
//! enough to attribute every call to the right function with zero
//! dependencies. Trait `dyn`/generic dispatch is handled conservatively at
//! resolution time (see [`graph`](crate::graph)), not here.

use crate::dataflow::{self, BodyFacts};
use crate::lexer::{lex, Token, TokenKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free-function call.
    Free,
    /// `recv.name(...)`. `on_self` is true for a direct `self.name(...)`
    /// (no field segment in between), which resolution scopes to the
    /// enclosing impl before falling back to any method of that name.
    Method {
        /// Direct `self.method(...)` call.
        on_self: bool,
    },
    /// `Head::name(...)` — `head` is the path segment before the final
    /// `::`, e.g. `Vec` in `Vec::with_capacity`.
    Qualified {
        /// Path segment immediately before the called name.
        head: String,
    },
    /// `name!(...)` — a macro invocation.
    Macro,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// Shape of the call site.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
}

/// A potentially panicking expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// What the site is (`unwrap()`, `panic!`, `index []`, `clone()`, …).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// A growth or eviction method call on a `self` field
/// (`self.seen.insert(...)` → field `seen`, method `insert`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldOp {
    /// Dotted field path under `self` (`seen`, `windows.traffic`).
    pub field: String,
    /// The method invoked on it.
    pub method: String,
    /// 1-based source line.
    pub line: usize,
}

/// One parsed function definition with its mined body facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self type or `trait` name, if any.
    pub owner: Option<String>,
    /// Enclosing module path (lexical `mod` nesting only).
    pub module: Vec<String>,
    /// Workspace-relative file, forward slashes.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inside `#[cfg(test)]` scope, under `#[test]`, or in a test path.
    pub is_test: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<Call>,
    /// Panic sites in the body.
    pub panics: Vec<Site>,
    /// Allocation sites in the body.
    pub allocs: Vec<Site>,
    /// Growth calls on `self` fields (`insert`/`push`/…).
    pub grows: Vec<FieldOp>,
    /// Eviction calls on `self` fields (`remove`/`pop`/`retain`/…).
    pub evicts: Vec<FieldOp>,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Dataflow facts (D009–D011) from the value-tracking pass.
    pub flow: BodyFacts,
    /// Taint facts (D012–D014) mined from the body.
    pub taint: crate::taint::FnTaint,
}

impl FnDef {
    /// `Owner::name` when the fn is a method, else `name` — prefixed with
    /// the module path. The identity used in call chains and tests.
    pub fn qualified(&self) -> String {
        let mut q = String::new();
        for m in &self.module {
            q.push_str(m);
            q.push_str("::");
        }
        if let Some(o) = &self.owner {
            q.push_str(o);
            q.push_str("::");
        }
        q.push_str(&self.name);
        q
    }
}

/// Keywords that look like call heads but are not calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move", "else", "in",
];

/// Keywords allowed immediately before `[` without making it an index
/// expression (slice patterns, bindings).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "in", "mut", "ref", "return", "if", "else", "match", "loop", "while", "for", "box",
];

/// Methods whose call can panic.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that unconditionally (or on failure) panic.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Method calls that allocate.
const ALLOC_METHODS: [&str; 6] = [
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
    "join",
];

/// `Type::fn` pairs that allocate.
const ALLOC_QUALIFIED: [(&str, &str); 7] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Methods that grow a collection.
const GROW_METHODS: [&str; 7] = [
    "insert",
    "push",
    "push_back",
    "push_front",
    "extend",
    "entry",
    "entry_or_default",
];

/// Methods that shrink or bound a collection.
const EVICT_METHODS: [&str; 13] = [
    "remove",
    "pop",
    "pop_front",
    "pop_back",
    "pop_first",
    "pop_last",
    "clear",
    "retain",
    "truncate",
    "drain",
    "split_off",
    "swap_remove",
    "take",
];

/// Parses one file into its function definitions. `rel` is the
/// workspace-relative path; `path_is_test` marks whole-file test
/// collateral (tests/, benches/, examples/).
pub fn parse_file(rel: &str, source: &str, path_is_test: bool) -> Vec<FnDef> {
    let tokens: Vec<Token> = lex(source)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut p = Parser {
        src: source,
        toks: &tokens,
        rel,
        fns: Vec::new(),
    };
    let end = tokens.len();
    p.items(
        0,
        end,
        &mut Scope {
            module: Vec::new(),
            owner: None,
            is_test: path_is_test,
        },
    );
    p.fns
}

/// Lexical context an item is parsed in.
struct Scope {
    module: Vec<String>,
    owner: Option<String>,
    is_test: bool,
}

struct Parser<'s, 't> {
    src: &'s str,
    toks: &'t [Token],
    rel: &'s str,
    fns: Vec<FnDef>,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Punct && self.text(i) == p
    }

    fn is_ident(&self, i: usize, id: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Ident && self.text(i) == id
    }

    /// Index one past the `}` matching the `{` at `open` (bounded by `end`).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, "}") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Index one past the `]` matching the `[` at `open`.
    fn matching_bracket(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, "]") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Walks the items in `[start, end)`.
    fn items(&mut self, start: usize, end: usize, scope: &mut Scope) {
        let mut i = start;
        // Attributes seen since the last item: is any `cfg(test)` / `test`?
        let mut pending_test_attr = false;
        while i < end {
            // Attribute: `#` `[` … `]` (also `#![…]`).
            if self.is_punct(i, "#") {
                let mut j = i + 1;
                if self.is_punct(j, "!") {
                    j += 1;
                }
                if self.is_punct(j, "[") {
                    let close = self.matching_bracket(j, end);
                    let attr_text: Vec<&str> = (j..close).map(|k| self.text(k)).collect();
                    let joined = attr_text.join("");
                    if joined.contains("cfg(test") || joined == "[test]" {
                        pending_test_attr = true;
                    }
                    i = close;
                    continue;
                }
            }
            if self.toks[i].kind == TokenKind::Ident {
                match self.text(i) {
                    "mod" => {
                        // `mod name { … }` or `mod name;`
                        let name = if i + 1 < end && self.toks[i + 1].kind == TokenKind::Ident {
                            self.text(i + 1).to_string()
                        } else {
                            String::new()
                        };
                        let mut j = i + 1;
                        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                            j += 1;
                        }
                        if j < end && self.is_punct(j, "{") {
                            let close = self.matching_brace(j, end);
                            let was_test = scope.is_test;
                            scope.is_test |= pending_test_attr;
                            scope.module.push(name);
                            self.items(j + 1, close - 1, scope);
                            scope.module.pop();
                            scope.is_test = was_test;
                            i = close;
                        } else {
                            i = j + 1;
                        }
                        pending_test_attr = false;
                        continue;
                    }
                    "impl" => {
                        let (self_ty, body_open) = self.impl_header(i, end);
                        if let Some(open) = body_open {
                            let close = self.matching_brace(open, end);
                            let was_test = scope.is_test;
                            scope.is_test |= pending_test_attr;
                            let prev_owner = scope.owner.replace(self_ty);
                            self.items(open + 1, close - 1, scope);
                            scope.owner = prev_owner;
                            scope.is_test = was_test;
                            i = close;
                        } else {
                            i += 1;
                        }
                        pending_test_attr = false;
                        continue;
                    }
                    "trait" => {
                        let name = if i + 1 < end && self.toks[i + 1].kind == TokenKind::Ident {
                            self.text(i + 1).to_string()
                        } else {
                            String::new()
                        };
                        let mut j = i + 1;
                        while j < end && !self.is_punct(j, "{") {
                            j += 1;
                        }
                        if j < end {
                            let close = self.matching_brace(j, end);
                            let was_test = scope.is_test;
                            scope.is_test |= pending_test_attr;
                            let prev_owner = scope.owner.replace(name);
                            self.items(j + 1, close - 1, scope);
                            scope.owner = prev_owner;
                            scope.is_test = was_test;
                            i = close;
                        } else {
                            i = end;
                        }
                        pending_test_attr = false;
                        continue;
                    }
                    "fn" => {
                        i = self.fn_def(i, end, scope, pending_test_attr);
                        pending_test_attr = false;
                        continue;
                    }
                    "struct" | "enum" | "union" | "macro_rules" => {
                        // Skip to `;` or over the balanced body.
                        let mut j = i + 1;
                        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                            // Tuple struct `struct S(u8);` — paren then `;`.
                            j += 1;
                        }
                        i = if j < end && self.is_punct(j, "{") {
                            self.matching_brace(j, end)
                        } else {
                            j + 1
                        };
                        pending_test_attr = false;
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }

    /// Parses an `impl` header starting at the `impl` token: returns the
    /// self-type name and the index of the body `{`.
    fn impl_header(&self, impl_at: usize, end: usize) -> (String, Option<usize>) {
        let mut i = impl_at + 1;
        // Find the body `{`; `<`/`>` never contain braces in a header.
        let mut body = None;
        let mut j = i;
        while j < end {
            if self.is_punct(j, "{") {
                body = Some(j);
                break;
            }
            if self.is_punct(j, ";") {
                break;
            }
            j += 1;
        }
        let header_end = body.unwrap_or(j);
        // If a `for` appears at angle-depth 0, the self type follows it.
        let mut angle = 0i32;
        let mut for_at = None;
        while i < header_end {
            if self.is_punct(i, "<") {
                angle += 1;
            } else if self.is_punct(i, ">") {
                angle -= 1;
            } else if angle == 0 && self.is_ident(i, "for") {
                for_at = Some(i);
            } else if angle == 0 && self.is_ident(i, "where") {
                break;
            }
            i += 1;
        }
        let type_start = for_at.map(|f| f + 1).unwrap_or(impl_at + 1);
        // Last angle-depth-0 identifier before `where`/body is the self
        // type's head segment (`Simulator` in `Simulator<A>`).
        let mut angle = 0i32;
        let mut name = String::new();
        let mut k = type_start;
        while k < header_end {
            if self.is_punct(k, "<") {
                angle += 1;
            } else if self.is_punct(k, ">") {
                angle -= 1;
            } else if angle == 0 && self.is_ident(k, "where") {
                break;
            } else if angle == 0
                && self.toks[k].kind == TokenKind::Ident
                && !matches!(
                    self.text(k),
                    "dyn" | "for" | "impl" | "mut" | "const" | "unsafe"
                )
            {
                name = self.text(k).to_string();
            }
            k += 1;
        }
        (name, body)
    }

    /// Parses a `fn` item starting at the `fn` keyword; returns the index
    /// one past the definition.
    fn fn_def(&mut self, fn_at: usize, end: usize, scope: &Scope, test_attr: bool) -> usize {
        let name_at = fn_at + 1;
        if name_at >= end || self.toks[name_at].kind != TokenKind::Ident {
            return fn_at + 1;
        }
        let name = self.text(name_at).to_string();
        // Scan the signature for the body `{` or a `;` (trait fn without
        // default body). Generic bounds may contain braces only inside
        // const generics — rare enough to ignore.
        let mut j = name_at + 1;
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        if j >= end || self.is_punct(j, ";") {
            return j + 1;
        }
        let body_close = self.matching_brace(j, end);
        let mut def = FnDef {
            name,
            owner: scope.owner.clone(),
            module: scope.module.clone(),
            file: self.rel.to_string(),
            line: self.toks[fn_at].line,
            is_test: scope.is_test || test_attr,
            calls: Vec::new(),
            panics: Vec::new(),
            allocs: Vec::new(),
            grows: Vec::new(),
            evicts: Vec::new(),
            params: Vec::new(),
            flow: BodyFacts::default(),
            taint: crate::taint::FnTaint::default(),
        };
        def.params = self.param_names(name_at + 1, j);
        self.mine_body(j + 1, body_close - 1, &mut def);
        def.flow = dataflow::analyze(self.src, self.toks, (fn_at, j), (j + 1, body_close - 1));
        def.taint = crate::taint::mine(
            self.src,
            self.toks,
            (j + 1, body_close - 1),
            self.rel,
            &def.params,
        );
        self.fns.push(def);
        body_close
    }

    /// Mines the parameter names out of a signature token range
    /// (`[after_name, body_open)`): identifiers at paren depth 1 that are
    /// immediately followed by `:`, skipping generic bounds (which may
    /// themselves contain parens, e.g. `F: Fn(usize) -> T`).
    fn param_names(&self, start: usize, end: usize) -> Vec<String> {
        // The parameter list opens at the first `(` at angle depth 0.
        let mut angle = 0i32;
        let mut open = None;
        let mut i = start;
        while i < end {
            if self.is_punct(i, "<") {
                angle += 1;
            } else if self.is_punct(i, ">") {
                angle -= 1;
            } else if angle == 0 && self.is_punct(i, "(") {
                open = Some(i);
                break;
            }
            i += 1;
        }
        let Some(open) = open else {
            return Vec::new();
        };
        let mut names = Vec::new();
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && self.toks[i].kind == TokenKind::Ident
                && self.is_punct(i + 1, ":")
                && i.checked_sub(1).is_some_and(|p| {
                    self.is_punct(p, "(") || self.is_punct(p, ",") || self.is_ident(p, "mut")
                })
            {
                names.push(self.text(i).to_string());
            }
            i += 1;
        }
        names
    }

    /// Extracts calls and rule sites from a body token range. Nested `fn`
    /// items inside the body are attributed to the enclosing function —
    /// conservative and rare.
    fn mine_body(&self, start: usize, end: usize, def: &mut FnDef) {
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            // Skip attribute spans inside bodies (`#[cfg(...)] let …`).
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                i = self.matching_bracket(i + 1, end);
                continue;
            }
            if t.kind == TokenKind::Ident {
                let name = self.text(i);
                // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
                if self.is_punct(i + 1, "!")
                    && (self.is_punct(i + 2, "(")
                        || self.is_punct(i + 2, "[")
                        || self.is_punct(i + 2, "{"))
                {
                    def.calls.push(Call {
                        name: name.to_string(),
                        kind: CallKind::Macro,
                        line: t.line,
                    });
                    if PANIC_MACROS.contains(&name) {
                        def.panics.push(Site {
                            what: format!("{name}!"),
                            line: t.line,
                        });
                    }
                    if ALLOC_MACROS.contains(&name) {
                        def.allocs.push(Site {
                            what: format!("{name}!"),
                            line: t.line,
                        });
                    }
                    i += 2;
                    continue;
                }
                // Call: `name(…)` with a non-keyword head.
                if self.is_punct(i + 1, "(") && !NON_CALL_KEYWORDS.contains(&name) {
                    let prev = i.checked_sub(1);
                    let prev_dot = prev.is_some_and(|p| self.is_punct(p, "."));
                    let prev_path = prev.is_some_and(|p| self.is_punct(p, "::"));
                    if prev_dot {
                        self.method_call(i, def);
                    } else if prev_path {
                        // Qualified: walk back the path head.
                        let head = i
                            .checked_sub(2)
                            .filter(|&p| self.toks[p].kind == TokenKind::Ident)
                            .map(|p| self.text(p).to_string())
                            .unwrap_or_default();
                        if ALLOC_QUALIFIED
                            .iter()
                            .any(|(h, n)| *h == head && *n == name)
                        {
                            def.allocs.push(Site {
                                what: format!("{head}::{name}"),
                                line: t.line,
                            });
                        }
                        // `mem::take(&mut self.field)` / `mem::replace(&mut
                        // self.field, …)` move the whole field out — that
                        // empties (or swaps) it, so it counts as eviction.
                        if head == "mem" && (name == "take" || name == "replace") {
                            if let Some(op) = self.mem_evict_target(i + 2, name, t.line) {
                                def.evicts.push(op);
                            }
                        }
                        def.calls.push(Call {
                            name: name.to_string(),
                            kind: CallKind::Qualified { head },
                            line: t.line,
                        });
                    } else {
                        def.calls.push(Call {
                            name: name.to_string(),
                            kind: CallKind::Free,
                            line: t.line,
                        });
                    }
                    i += 1;
                    continue;
                }
            }
            // Index expression: `[` whose previous token closes a value
            // (identifier, `)`, `]`) and is not a binding keyword.
            if self.is_punct(i, "[") {
                if let Some(p) = i.checked_sub(1) {
                    let pt = &self.toks[p];
                    let indexes_value = match pt.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&self.text(p)),
                        TokenKind::Punct => {
                            let s = self.text(p);
                            s == ")" || s == "]"
                        }
                        _ => false,
                    };
                    if indexes_value {
                        def.panics.push(Site {
                            what: "index []".to_string(),
                            line: self.toks[i].line,
                        });
                    }
                }
            }
            i += 1;
        }
    }

    /// Matches `&mut self.field[.field…]` starting at `args_at` (the token
    /// after the `(` of a `mem::take`/`mem::replace` call) and returns the
    /// field it evicts, if the argument has that exact shape.
    fn mem_evict_target(&self, args_at: usize, method: &str, line: usize) -> Option<FieldOp> {
        let mut k = args_at;
        if !self.is_punct(k, "&") {
            return None;
        }
        k += 1;
        if self.is_ident(k, "mut") {
            k += 1;
        }
        if !self.is_ident(k, "self") {
            return None;
        }
        k += 1;
        let mut segs: Vec<String> = Vec::new();
        while self.is_punct(k, ".")
            && k + 1 < self.toks.len()
            && self.toks[k + 1].kind == TokenKind::Ident
        {
            segs.push(self.text(k + 1).to_string());
            k += 2;
        }
        if segs.is_empty() {
            return None;
        }
        Some(FieldOp {
            field: segs.join("."),
            method: method.to_string(),
            line,
        })
    }

    /// Handles `recv.name(` at the name token `i`: classifies the call,
    /// records panic/alloc sites and `self`-field growth/eviction.
    fn method_call(&self, i: usize, def: &mut FnDef) {
        let name = self.text(i);
        let line = self.toks[i].line;
        // Walk the receiver back: `.`-separated identifier chain.
        let mut segs: Vec<String> = Vec::new();
        let mut k = i - 1; // the `.` before the name
        while let Some(prev) = k.checked_sub(1) {
            if self.toks[prev].kind != TokenKind::Ident {
                break;
            }
            segs.push(self.text(prev).to_string());
            let Some(dot) = prev.checked_sub(1) else {
                break;
            };
            if !self.is_punct(dot, ".") {
                break;
            }
            k = dot;
        }
        segs.reverse();
        let on_self = segs.len() == 1 && segs[0] == "self";
        def.calls.push(Call {
            name: name.to_string(),
            kind: CallKind::Method { on_self },
            line,
        });
        if PANIC_METHODS.contains(&name) {
            def.panics.push(Site {
                what: format!("{name}()"),
                line,
            });
        }
        if ALLOC_METHODS.contains(&name) {
            def.allocs.push(Site {
                what: format!("{name}()"),
                line,
            });
        }
        // `self.field[.field…].grow_or_evict(...)`.
        if segs.len() >= 2 && segs[0] == "self" {
            let field = segs[1..].join(".");
            if GROW_METHODS.contains(&name) {
                def.grows.push(FieldOp {
                    field,
                    method: name.to_string(),
                    line,
                });
            } else if EVICT_METHODS.contains(&name) {
                def.evicts.push(FieldOp {
                    field,
                    method: name.to_string(),
                    line,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnDef> {
        parse_file("crates/x/src/lib.rs", src, false)
    }

    #[test]
    fn free_fn_and_method_ownership() {
        let fns = parse(
            "fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             trait T { fn defaulted(&self) { self.method(); } }\n",
        );
        let names: Vec<String> = fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "S::method", "T::defaulted"]);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let fns = parse("impl<A: Agent> Classifier for Simulator<A> { fn run(&self) {} }\n");
        assert_eq!(fns[0].qualified(), "Simulator::run");
    }

    #[test]
    fn module_nesting_and_cfg_test() {
        let fns = parse(
            "mod inner { fn a() {} }\n\
             #[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n",
        );
        assert_eq!(fns[0].qualified(), "inner::a");
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test && fns[2].is_test);
    }

    #[test]
    fn calls_are_classified() {
        let fns = parse(
            "fn f(&self) {\n\
                 helper();\n\
                 self.dispatch();\n\
                 self.queue.push(1);\n\
                 EventQueue::new();\n\
                 println!(\"x\");\n\
             }\n",
        );
        let c = &fns[0].calls;
        assert_eq!(
            c[0],
            Call {
                name: "helper".into(),
                kind: CallKind::Free,
                line: 2
            }
        );
        assert_eq!(
            c[1],
            Call {
                name: "dispatch".into(),
                kind: CallKind::Method { on_self: true },
                line: 3
            }
        );
        assert_eq!(
            c[2],
            Call {
                name: "push".into(),
                kind: CallKind::Method { on_self: false },
                line: 4
            }
        );
        assert_eq!(
            c[3],
            Call {
                name: "new".into(),
                kind: CallKind::Qualified {
                    head: "EventQueue".into()
                },
                line: 5
            }
        );
        assert_eq!(
            c[4],
            Call {
                name: "println".into(),
                kind: CallKind::Macro,
                line: 6
            }
        );
    }

    #[test]
    fn panic_sites_include_indexing_but_not_patterns() {
        let fns = parse(
            "fn f(v: &[u32], m: &M) -> u32 {\n\
                 let [a, b] = [1, 2];\n\
                 let x = v[0];\n\
                 let y = m.counts[a as usize];\n\
                 v.first().unwrap() + panic_free(x, y, b)\n\
             }\n",
        );
        let p = &fns[0].panics;
        assert_eq!(p.len(), 3, "{p:?}");
        assert_eq!(
            p[0],
            Site {
                what: "index []".into(),
                line: 3
            }
        );
        assert_eq!(
            p[1],
            Site {
                what: "index []".into(),
                line: 4
            }
        );
        assert_eq!(
            p[2],
            Site {
                what: "unwrap()".into(),
                line: 5
            }
        );
    }

    #[test]
    fn attribute_brackets_are_not_indexing() {
        let fns = parse("fn f() {\n    #[allow(unused)]\n    let x = 1;\n}\n");
        assert!(fns[0].panics.is_empty());
    }

    #[test]
    fn vec_macro_is_alloc_not_index() {
        let fns = parse("fn f() { let v = vec![1, 2]; }\n");
        assert_eq!(fns[0].allocs.len(), 1);
        assert!(fns[0].panics.is_empty());
    }

    #[test]
    fn growth_and_eviction_field_ops() {
        let fns = parse(
            "impl A {\n\
                 fn grow(&mut self) { self.seen.insert(1); self.windows.traffic.push(2); }\n\
                 fn bound(&mut self) { self.seen.pop_first(); local.push(3); }\n\
             }\n",
        );
        assert_eq!(
            fns[0].grows,
            vec![
                FieldOp {
                    field: "seen".into(),
                    method: "insert".into(),
                    line: 2
                },
                FieldOp {
                    field: "windows.traffic".into(),
                    method: "push".into(),
                    line: 2
                },
            ]
        );
        assert_eq!(
            fns[1].evicts,
            vec![FieldOp {
                field: "seen".into(),
                method: "pop_first".into(),
                line: 3
            }]
        );
        // `local.push` is not a self-field growth.
        assert!(fns[1].grows.is_empty());
    }

    #[test]
    fn mem_take_and_replace_are_evictions() {
        let fns = parse(
            "impl A {\n\
                 fn grow(&mut self) { self.ready.push(1); }\n\
                 fn drain(&mut self) -> Vec<u32> { std::mem::take(&mut self.ready) }\n\
                 fn swap(&mut self) { let _ = std::mem::replace(&mut self.slot, 0); }\n\
                 fn not_a_field(&mut self, v: &mut Vec<u32>) { std::mem::take(v); }\n\
             }\n",
        );
        assert_eq!(
            fns[1].evicts,
            vec![FieldOp {
                field: "ready".into(),
                method: "take".into(),
                line: 3
            }]
        );
        assert_eq!(
            fns[2].evicts,
            vec![FieldOp {
                field: "slot".into(),
                method: "replace".into(),
                line: 4
            }]
        );
        assert!(fns[3].evicts.is_empty());
    }

    #[test]
    fn alloc_sites_cover_qualified_methods_and_macros() {
        let fns = parse(
            "fn f() {\n\
                 let a = Vec::new();\n\
                 let b = x.to_vec();\n\
                 let c = y.clone();\n\
                 let d = format!(\"{a:?}\");\n\
             }\n",
        );
        let whats: Vec<&str> = fns[0].allocs.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["Vec::new", "to_vec()", "clone()", "format!"]);
    }

    #[test]
    fn const_fn_is_parsed() {
        let fns = parse("impl E { pub const fn index(self) -> usize { 0 } }\n");
        assert_eq!(fns[0].qualified(), "E::index");
    }

    #[test]
    fn trait_fn_without_body_is_skipped() {
        let fns = parse("trait T { fn sig(&self); fn with_body(&self) { self.sig(); } }\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qualified(), "T::with_body");
    }
}
