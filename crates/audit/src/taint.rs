//! The taint layer — rules D012–D014.
//!
//! Untrusted input enters this workspace at exactly three kinds of
//! places: bytes read off a `TcpStream` in `crates/serve`, CLI arguments
//! and scenario files in `cfa-bench`, and the fleet driver's scenario
//! parsing under `src/`. A length or index derived from those bytes must
//! pass a *sanitizer* — a dominating comparison against a cap, a
//! `try_into`/`checked_*` conversion, or construction of a validated
//! newtype like `FrameLen` — before it may size an allocation (D012) or
//! index a slice / feed wrapping arithmetic (D013).
//!
//! Mining happens at parse time ([`mine`]) because tokens are file-local
//! and dropped after parsing: each function body is lowered into a small
//! straight-line IR of [`TaintOp`]s (assignments with their source
//! identifiers, bound checks, calls with per-argument identifier lists,
//! sinks, returns). The interprocedural fixpoint in [`check`] then
//! propagates taint through the workspace call graph — argument →
//! parameter binding, return values, and `read(&mut buf)`-style
//! out-parameters — using the same conservative resolution as D006
//! ([`CallGraph::resolve`]). Findings carry the full source → sink call
//! chain, like D006 panic-reachability notes.
//!
//! D014 is the lock-discipline half: the dataflow pass records every
//! lock acquisition with the identities already held
//! ([`crate::dataflow::LockAcq`]) and every call made under a live guard
//! ([`crate::dataflow::GuardedCall`]). This layer builds the
//! lock-acquisition-order graph over `crates/serve`, flags any
//! acquisition that closes a cycle (the classic AB/BA deadlock), and
//! flags a guard held across a call that transitively reaches blocking
//! socket I/O (`accept`/`read`/`write` family) — the interprocedural
//! generalisation of D011, which keeps only the direct-I/O-under-guard
//! case.
//!
//! Suppression: `// audit: allow(D012, reason = "...")` at the sink (or
//! the line above), same as every other rule.

use crate::graph::CallGraph;
use crate::interproc::{render_chain, FileCtx};
use crate::lexer::{Token, TokenKind};
use crate::parser::CallKind;
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of dangerous operation a tainted value reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Allocation sized by the value (`with_capacity`, `reserve`,
    /// `resize`, `vec![x; n]`).
    AllocSize,
    /// Slice/array indexing with the value.
    Index,
    /// Wrapping or unchecked arithmetic on the value.
    Arith,
}

/// One operation in the per-function taint IR, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintOp {
    /// `let dst = …;` / `dst = …;` / `dst op= …;`. `srcs` are the
    /// identifiers read by the initializer, `source` is `Some` when the
    /// initializer calls a taint source directly (`env::args()`),
    /// `sanitized` when it passes through a recognized sanitizer, and
    /// `calls` are the op indices of `Call` ops mined from the same
    /// initializer (for return-value taint).
    Assign {
        /// Bound or assigned name (field stores bind the field name).
        dst: String,
        /// Identifiers the initializer reads.
        srcs: Vec<String>,
        /// Source description when the initializer is itself a source.
        source: Option<String>,
        /// True when the initializer passes a sanitizer.
        sanitized: bool,
        /// Op indices of `Call` ops inside the initializer.
        calls: Vec<usize>,
        /// 1-based source line.
        line: usize,
    },
    /// An identifier compared in an `if`/`while` condition — a dominating
    /// bound check, which clears its taint downstream.
    Check {
        /// The checked identifier.
        name: String,
    },
    /// An out-parameter filled from a read-family source call
    /// (`stream.read(&mut buf)` taints `buf`).
    SourceFill {
        /// The identifier the read fills.
        dst: String,
        /// Human description of the source.
        desc: String,
    },
    /// A call expression with per-argument identifier lists, for
    /// argument → parameter taint binding.
    Call {
        /// Callee name (last path segment / method name).
        name: String,
        /// Call shape, for graph resolution.
        kind: CallKind,
        /// Identifiers appearing in each argument position.
        args: Vec<Vec<String>>,
        /// 1-based source line.
        line: usize,
    },
    /// A dangerous operation consuming identifiers.
    Sink {
        /// Which kind of sink.
        kind: SinkKind,
        /// Display form (`with_capacity()`, `index []`).
        what: String,
        /// Identifiers feeding the sink.
        names: Vec<String>,
        /// 1-based source line.
        line: usize,
    },
    /// A `return expr;` or trailing expression — the identifiers whose
    /// taint escapes through the return value.
    Return {
        /// Identifiers in the returned expression.
        names: Vec<String>,
    },
}

/// The taint IR of one function body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnTaint {
    /// Ops in source order.
    pub ops: Vec<TaintOp>,
}

/// Keywords that look like call heads but are not calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move", "else", "in",
];

/// Keywords allowed before `[` without making it an index expression.
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "in", "mut", "ref", "return", "if", "else", "match", "loop", "while", "for", "box",
];

/// Identifiers never collected as taint carriers.
const IDENT_SKIP: [&str; 22] = [
    "mut", "ref", "as", "in", "if", "else", "match", "return", "let", "move", "self", "Some",
    "None", "Ok", "Err", "true", "false", "box", "loop", "while", "for", "break",
];

/// Read-family methods whose `&mut` argument is filled with untrusted
/// bytes when called in a source crate.
const READ_FILL_METHODS: [&str; 5] = [
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
];

/// Methods/functions whose numeric argument sizes an allocation.
const ALLOC_SIZE_METHODS: [&str; 6] = [
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "set_len",
];

/// Validated-newtype constructors that launder taint by construction.
/// `FrameLen::parse` rejects any length over the frame cap, so a value
/// that came through it is bounded.
const SANITIZER_TYPES: [&str; 1] = ["FrameLen"];

/// Lowers one function body to taint IR. `rel` decides whether source
/// seeding applies: only the serving crate, the bench crate, and the
/// fleet driver under `src/` receive untrusted input by design — the
/// audit tool's own file reads must not taint themselves.
pub fn mine(
    src: &str,
    toks: &[Token],
    body: (usize, usize),
    rel: &str,
    _params: &[String],
) -> FnTaint {
    let seed = rel.starts_with("crates/serve/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("src/");
    let mut m = Miner {
        src,
        toks,
        ops: Vec::new(),
        seed,
    };
    m.walk(body.0, body.1);
    m.trailing_return(body.0, body.1);
    FnTaint { ops: m.ops }
}

struct Miner<'s, 't> {
    src: &'s str,
    toks: &'t [Token],
    ops: Vec<TaintOp>,
    seed: bool,
}

impl Miner<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Punct && self.text(i) == p
    }

    fn is_ident_at(&self, i: usize, id: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Ident && self.text(i) == id
    }

    fn ident_kind(&self, i: usize) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Ident
    }

    /// Index one past the `)` matching the `(` at `open`.
    fn matching_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "(") {
                depth += 1;
            } else if self.is_punct(i, ")") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Index one past the `]` matching the `[` at `open`.
    fn matching_bracket(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, "]") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// First `;` or `{` at paren/bracket depth 0, or an unbalanced `)`.
    fn stmt_end(&self, start: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = start;
        while i < end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            } else if depth == 0 && (self.is_punct(i, ";") || self.is_punct(i, "{")) {
                return i;
            }
            i += 1;
        }
        end
    }

    /// Identifiers in `[start, end)` that can carry a value: not call or
    /// macro heads, not keywords/ctor names.
    fn idents_in(&self, start: usize, end: usize) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut i = start;
        while i < end {
            if self.ident_kind(i) && !self.is_punct(i + 1, "(") && !self.is_punct(i + 1, "!") {
                let t = self.text(i);
                if !IDENT_SKIP.contains(&t) && !out.iter().any(|o| o == t) {
                    out.push(t.to_string());
                }
            }
            i += 1;
        }
        out
    }

    /// Main statement walk over a body/block token range.
    fn walk(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                i = self.matching_bracket(i + 1, end);
                continue;
            }
            if self.ident_kind(i) {
                match self.text(i) {
                    "let" => {
                        i = self.let_stmt(i, end);
                        continue;
                    }
                    "if" | "while" => {
                        i = self.cond(i, end);
                        continue;
                    }
                    "return" => {
                        let stop = self.stmt_end(i + 1, end);
                        let names = self.idents_in(i + 1, stop);
                        if !names.is_empty() {
                            self.ops.push(TaintOp::Return { names });
                        }
                        // Keep walking into the expression for its calls
                        // and sinks.
                        i += 1;
                        continue;
                    }
                    _ => {
                        if let Some(next) = self.reassign(i, end) {
                            i = next;
                            continue;
                        }
                    }
                }
            }
            self.token_site(i, end);
            i += 1;
        }
    }

    /// `name = …` / `name op= …` at the identifier `i`; returns the resume
    /// index when it is one.
    fn reassign(&mut self, i: usize, end: usize) -> Option<usize> {
        let name = self.text(i).to_string();
        if IDENT_SKIP.contains(&name.as_str()) {
            return None;
        }
        let (eq_at, compound) = if self.is_punct(i + 1, "=") {
            (i + 1, false)
        } else if self
            .toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Punct)
            && matches!(
                self.text(i + 1),
                "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
            )
            && self.is_punct(i + 2, "=")
        {
            (i + 2, true)
        } else {
            return None;
        };
        // `a == b` (and `a &&= …`-ish shapes) are comparisons, not stores.
        if self.is_punct(eq_at + 1, "=") {
            return None;
        }
        if i.checked_sub(1)
            .is_some_and(|p| self.toks[p].kind == TokenKind::Punct)
            && matches!(self.text(i - 1), "=" | "<" | ">" | "!")
        {
            return None;
        }
        let line = self.toks[i].line;
        let stop = self.stmt_end(eq_at + 1, end);
        self.emit_assign(name, eq_at + 1, stop, compound, line);
        Some(stop)
    }

    /// `let [mut] name [: Ty] = init;` — patterns more complex than one
    /// identifier fall back to the plain walk (their calls and sinks are
    /// still mined, only the binding is untracked).
    fn let_stmt(&mut self, let_at: usize, end: usize) -> usize {
        let line = self.toks[let_at].line;
        let mut i = let_at + 1;
        if self.is_ident_at(i, "mut") {
            i += 1;
        }
        if i >= end || !self.ident_kind(i) {
            return let_at + 1;
        }
        let name = self.text(i).to_string();
        let mut j = i + 1;
        if self.is_punct(j, ":") {
            // Skip the type annotation: angles nest, `->` stays joined.
            let mut angle = 0i32;
            let mut depth = 0i32;
            j += 1;
            while j < end {
                if self.is_punct(j, "<") {
                    angle += 1;
                } else if self.is_punct(j, ">") {
                    angle -= 1;
                } else if self.is_punct(j, "(") || self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                    depth -= 1;
                } else if angle == 0
                    && depth == 0
                    && (self.is_punct(j, "=") || self.is_punct(j, ";"))
                {
                    break;
                }
                j += 1;
            }
        }
        if !self.is_punct(j, "=") {
            return let_at + 1;
        }
        let stop = self.stmt_end(j + 1, end);
        self.emit_assign(name, j + 1, stop, false, line);
        stop
    }

    /// Mines an initializer range for its call/sink ops, then pushes the
    /// `Assign` tying them to `dst`.
    fn emit_assign(&mut self, dst: String, start: usize, stop: usize, compound: bool, line: usize) {
        let before = self.ops.len();
        self.expr(start, stop);
        let calls: Vec<usize> = (before..self.ops.len())
            .filter(|&k| matches!(self.ops[k], TaintOp::Call { .. }))
            .collect();
        let mut srcs = self.idents_in(start, stop);
        if compound && !srcs.contains(&dst) {
            srcs.push(dst.clone());
        }
        let source = self.source_of(start, stop);
        let sanitized = self.is_sanitizing(start, stop);
        self.ops.push(TaintOp::Assign {
            dst,
            srcs,
            source,
            sanitized,
            calls,
            line,
        });
    }

    /// Token-by-token pass over an expression range (no statement
    /// structure): records calls, sources, and sinks.
    fn expr(&mut self, start: usize, stop: usize) {
        let mut i = start;
        while i < stop {
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                i = self.matching_bracket(i + 1, stop);
                continue;
            }
            self.token_site(i, stop);
            i += 1;
        }
    }

    /// `if`/`while` condition: mine its expression, then emit a `Check`
    /// for every identifier when the condition compares anything — the
    /// conservative model of a dominating bound check.
    fn cond(&mut self, kw_at: usize, end: usize) -> usize {
        let stop = self.stmt_end(kw_at + 1, end);
        self.expr(kw_at + 1, stop);
        if self.has_comparison(kw_at + 1, stop) {
            for name in self.idents_in(kw_at + 1, stop) {
                self.ops.push(TaintOp::Check { name });
            }
        }
        stop
    }

    /// Any `<`, `>`, `==`, `!=` in the range (the lexer leaves comparison
    /// operators as single-byte puncts).
    fn has_comparison(&self, start: usize, stop: usize) -> bool {
        let mut i = start;
        while i < stop {
            if self.toks[i].kind == TokenKind::Punct {
                match self.text(i) {
                    "<" | ">" => return true,
                    "=" | "!" if self.is_punct(i + 1, "=") => return true,
                    _ => {}
                }
            }
            i += 1;
        }
        false
    }

    /// Does the range call a direct untrusted-input source?
    fn source_of(&self, start: usize, stop: usize) -> Option<String> {
        if !self.seed {
            return None;
        }
        let mut i = start;
        while i + 2 < stop {
            if self.ident_kind(i) && self.is_punct(i + 1, "::") && self.ident_kind(i + 2) {
                let head = self.text(i);
                let name = self.text(i + 2);
                let hit = (head == "env" && matches!(name, "args" | "args_os" | "var" | "var_os"))
                    || (head == "fs" && matches!(name, "read" | "read_to_string"));
                if hit {
                    return Some(format!("{head}::{name}()"));
                }
            }
            i += 1;
        }
        None
    }

    /// Does the range pass a sanitizer? Covers `try_into`/`try_from`,
    /// `checked_*` arithmetic, `.min(cap)`/`clamp`, and validated-newtype
    /// constructors (`FrameLen::…`).
    fn is_sanitizing(&self, start: usize, stop: usize) -> bool {
        let mut i = start;
        while i < stop {
            if self.ident_kind(i) {
                let t = self.text(i);
                if matches!(t, "try_into" | "try_from" | "clamp") || t.starts_with("checked_") {
                    return true;
                }
                if t == "min" && i.checked_sub(1).is_some_and(|p| self.is_punct(p, ".")) {
                    return true;
                }
                if SANITIZER_TYPES.contains(&t) && self.is_punct(i + 1, "::") {
                    return true;
                }
            }
            i += 1;
        }
        false
    }

    /// Per-argument identifier lists of a call whose `(` is at `open`.
    fn call_args(&self, open: usize, close: usize) -> Vec<Vec<String>> {
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut seg = open + 1;
        let mut i = open;
        while i < close {
            if self.is_punct(i, "(") || self.is_punct(i, "[") || self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") || self.is_punct(i, "}") {
                depth -= 1;
                if depth == 0 {
                    if i > seg {
                        args.push(self.idents_in(seg, i));
                    }
                    break;
                }
            } else if depth == 1 && self.is_punct(i, ",") {
                args.push(self.idents_in(seg, i));
                seg = i + 1;
            }
            i += 1;
        }
        args
    }

    /// Records the call/source/sink ops anchored at token `i`.
    fn token_site(&mut self, i: usize, end: usize) {
        let t = &self.toks[i];
        // `vec![init; len]` sizes an allocation with `len`.
        if t.kind == TokenKind::Ident
            && self.text(i) == "vec"
            && self.is_punct(i + 1, "!")
            && self.is_punct(i + 2, "[")
        {
            let close = self.matching_bracket(i + 2, end);
            let mut depth = 0i32;
            for k in (i + 2)..close {
                if self.is_punct(k, "[") || self.is_punct(k, "(") {
                    depth += 1;
                } else if self.is_punct(k, "]") || self.is_punct(k, ")") {
                    depth -= 1;
                } else if depth == 1 && self.is_punct(k, ";") {
                    let names = self.idents_in(k + 1, close.saturating_sub(1));
                    if !names.is_empty() {
                        self.ops.push(TaintOp::Sink {
                            kind: SinkKind::AllocSize,
                            what: String::from("vec![_; n]"),
                            names,
                            line: t.line,
                        });
                    }
                    break;
                }
            }
            return;
        }
        if t.kind == TokenKind::Ident && self.is_punct(i + 1, "(") {
            let name = self.text(i).to_string();
            if NON_CALL_KEYWORDS.contains(&name.as_str()) {
                return;
            }
            let line = t.line;
            let prev = i.checked_sub(1);
            let prev_dot = prev.is_some_and(|p| self.is_punct(p, "."));
            let prev_path = prev.is_some_and(|p| self.is_punct(p, "::"));
            let close = self.matching_paren(i + 1, end);
            let args = self.call_args(i + 1, close);
            if self.seed && prev_dot && READ_FILL_METHODS.contains(&name.as_str()) {
                let recv = i
                    .checked_sub(2)
                    .filter(|&p| self.ident_kind(p))
                    .map(|p| self.text(p).to_string())
                    .unwrap_or_else(|| String::from("stream"));
                let fills: Vec<String> = args.iter().flatten().cloned().collect();
                for dst in fills {
                    self.ops.push(TaintOp::SourceFill {
                        dst,
                        desc: format!("bytes filled by `{recv}.{name}()`"),
                    });
                }
            }
            if ALLOC_SIZE_METHODS.contains(&name.as_str()) {
                let names: Vec<String> = args.iter().flatten().cloned().collect();
                if !names.is_empty() {
                    self.ops.push(TaintOp::Sink {
                        kind: SinkKind::AllocSize,
                        what: format!("{name}()"),
                        names,
                        line,
                    });
                }
            }
            if prev_dot && (name.starts_with("wrapping_") || name.starts_with("unchecked_")) {
                let mut names: Vec<String> = args.iter().flatten().cloned().collect();
                if let Some(recv) = i
                    .checked_sub(2)
                    .filter(|&p| self.ident_kind(p))
                    .map(|p| self.text(p).to_string())
                {
                    if !IDENT_SKIP.contains(&recv.as_str()) && !names.contains(&recv) {
                        names.push(recv);
                    }
                }
                if !names.is_empty() {
                    self.ops.push(TaintOp::Sink {
                        kind: SinkKind::Arith,
                        what: format!("{name}()"),
                        names,
                        line,
                    });
                }
            }
            let kind = if prev_dot {
                let on_self = i
                    .checked_sub(2)
                    .is_some_and(|p| self.is_ident_at(p, "self"));
                CallKind::Method { on_self }
            } else if prev_path {
                let head = i
                    .checked_sub(2)
                    .filter(|&p| self.ident_kind(p))
                    .map(|p| self.text(p).to_string())
                    .unwrap_or_default();
                CallKind::Qualified { head }
            } else {
                CallKind::Free
            };
            self.ops.push(TaintOp::Call {
                name,
                kind,
                args,
                line,
            });
            return;
        }
        // Index expression: `[` whose previous token closes a value.
        if self.is_punct(i, "[") {
            if let Some(p) = i.checked_sub(1) {
                let indexes_value = match self.toks[p].kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&self.text(p)),
                    TokenKind::Punct => {
                        let s = self.text(p);
                        s == ")" || s == "]"
                    }
                    _ => false,
                };
                if indexes_value {
                    let close = self.matching_bracket(i, end);
                    let names = self.idents_in(i + 1, close.saturating_sub(1));
                    if !names.is_empty() {
                        self.ops.push(TaintOp::Sink {
                            kind: SinkKind::Index,
                            what: String::from("index []"),
                            names,
                            line: self.toks[i].line,
                        });
                    }
                }
            }
        }
    }

    /// The body's trailing expression is its return value. Only emitted
    /// for brace-free trailing segments — a trailing `if`/`match` block
    /// would over-approximate wildly.
    fn trailing_return(&mut self, start: usize, end: usize) {
        let mut depth = 0i32;
        let mut seg = start;
        let mut i = start;
        while i < end {
            if self.is_punct(i, "(") || self.is_punct(i, "[") || self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, ")") || self.is_punct(i, "]") || self.is_punct(i, "}") {
                depth -= 1;
            } else if depth == 0 && self.is_punct(i, ";") {
                seg = i + 1;
            }
            i += 1;
        }
        if (seg..end).any(|k| self.is_punct(k, "{")) {
            return;
        }
        let names = self.idents_in(seg, end);
        if !names.is_empty() {
            self.ops.push(TaintOp::Return { names });
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural fixpoint
// ---------------------------------------------------------------------------

/// Where a tainted value came from: source description plus the call
/// chain walked so far (qualified fn names, source first).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Prov {
    desc: String,
    path: Vec<String>,
}

impl Prov {
    /// Extends the chain through `q`, skipping consecutive duplicates.
    fn via(&self, q: &str) -> Prov {
        let mut p = self.clone();
        if p.path.last().map(String::as_str) != Some(q) {
            p.path.push(q.to_string());
        }
        p
    }
}

/// Monotone interprocedural state, indexed by fn id.
struct State {
    /// Tainted parameter positions, seeded by callers.
    tainted: Vec<BTreeMap<usize, Prov>>,
    /// Taint of the return value.
    ret: Vec<Option<Prov>>,
    /// Parameter positions the fn taints in the *caller* (out-params).
    out: Vec<BTreeMap<usize, Prov>>,
}

/// One tainted value reaching a sink during an eval pass.
struct SinkHit {
    kind: SinkKind,
    what: String,
    line: usize,
    name: String,
    prov: Prov,
}

struct EvalOut {
    env: BTreeMap<String, Prov>,
    hits: Vec<SinkHit>,
    arg_out: Vec<(usize, usize, Prov)>,
    ret: Option<Prov>,
}

/// Abstract-interprets one function's taint IR. Two passes over the ops
/// catch loop-carried taint; hits and outward flows are collected from
/// the second (stable) pass only. `seeded` controls whether the fn's own
/// tainted-parameter state enters the environment — the unseeded run
/// isolates what the fn taints *by itself* (sources + callee
/// out-params), which is what callers may conclude about by-ref
/// arguments without cross-caller contamination.
fn eval(
    graph: &CallGraph,
    i: usize,
    targets: &BTreeMap<usize, Vec<usize>>,
    st: &State,
    seeded: bool,
) -> EvalOut {
    let f = &graph.fns[i];
    let q = f.qualified();
    let mut env: BTreeMap<String, Prov> = BTreeMap::new();
    if seeded {
        for (pos, prov) in &st.tainted[i] {
            if let Some(p) = f.params.get(*pos) {
                env.entry(p.clone()).or_insert_with(|| prov.clone());
            }
        }
    }
    let mut hits: Vec<SinkHit> = Vec::new();
    let mut arg_out: Vec<(usize, usize, Prov)> = Vec::new();
    let mut ret: Option<Prov> = None;

    for pass in 0..2 {
        let collect = pass == 1;
        for (k, op) in f.taint.ops.iter().enumerate() {
            match op {
                TaintOp::SourceFill { dst, desc } => {
                    env.entry(dst.clone()).or_insert_with(|| Prov {
                        desc: desc.clone(),
                        path: vec![q.clone()],
                    });
                }
                TaintOp::Check { name } => {
                    env.remove(name);
                }
                TaintOp::Assign {
                    dst,
                    srcs,
                    source,
                    sanitized,
                    calls,
                    ..
                } => {
                    if *sanitized {
                        env.remove(dst);
                        continue;
                    }
                    if let Some(desc) = source {
                        env.entry(dst.clone()).or_insert_with(|| Prov {
                            desc: desc.clone(),
                            path: vec![q.clone()],
                        });
                        continue;
                    }
                    let mut prov = srcs.iter().find_map(|s| env.get(s).cloned());
                    if prov.is_none() {
                        prov = calls.iter().find_map(|c| {
                            targets
                                .get(c)
                                .and_then(|ts| ts.iter().find_map(|&t| st.ret[t].clone()))
                                .map(|p| p.via(&q))
                        });
                    }
                    match prov {
                        Some(p) => {
                            env.entry(dst.clone()).or_insert(p);
                        }
                        None => {
                            env.remove(dst);
                        }
                    }
                }
                TaintOp::Call { args, .. } => {
                    let Some(ts) = targets.get(&k) else { continue };
                    if collect {
                        for (pos, arg) in args.iter().enumerate() {
                            if let Some(prov) = arg.iter().find_map(|a| env.get(a)) {
                                for &t in ts {
                                    arg_out.push((t, pos, prov.clone()));
                                }
                            }
                        }
                    }
                    for &t in ts {
                        for (pos, prov) in &st.out[t] {
                            if let Some(arg) = args.get(*pos) {
                                for a in arg {
                                    env.entry(a.clone()).or_insert_with(|| prov.via(&q));
                                }
                            }
                        }
                    }
                }
                TaintOp::Sink {
                    kind,
                    what,
                    names,
                    line,
                } => {
                    if collect {
                        for n in names {
                            if let Some(prov) = env.get(n) {
                                hits.push(SinkHit {
                                    kind: *kind,
                                    what: what.clone(),
                                    line: *line,
                                    name: n.clone(),
                                    prov: prov.clone(),
                                });
                                break;
                            }
                        }
                    }
                }
                TaintOp::Return { names } => {
                    if collect && ret.is_none() {
                        ret = names.iter().find_map(|n| env.get(n).cloned());
                    }
                }
            }
        }
    }
    EvalOut {
        env,
        hits,
        arg_out,
        ret,
    }
}

/// Runs the taint fixpoint and D012/D013 emission, then the D014 lock
/// rules. `files` maps workspace-relative paths to lexical context.
pub fn check(graph: &CallGraph, files: &BTreeMap<String, FileCtx>) -> Vec<Finding> {
    let n = graph.fns.len();
    // Call-op targets, resolved once with the shared conservative policy.
    let targets: Vec<BTreeMap<usize, Vec<usize>>> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut m = BTreeMap::new();
            for (k, op) in f.taint.ops.iter().enumerate() {
                if let TaintOp::Call { name, kind, .. } = op {
                    let ts = graph.resolve(i, name, kind);
                    if !ts.is_empty() {
                        m.insert(k, ts);
                    }
                }
            }
            m
        })
        .collect();

    let mut st = State {
        tainted: vec![BTreeMap::new(); n],
        ret: vec![None; n],
        out: vec![BTreeMap::new(); n],
    };
    for _round in 0..24 {
        let mut changed = false;
        for (i, tgt) in targets.iter().enumerate() {
            if graph.fns[i].is_test {
                continue;
            }
            let out = eval(graph, i, tgt, &st, true);
            for (t, pos, prov) in out.arg_out {
                if graph.fns[t].is_test || pos >= graph.fns[t].params.len() {
                    continue;
                }
                st.tainted[t].entry(pos).or_insert_with(|| {
                    changed = true;
                    prov.via(&graph.fns[t].qualified())
                });
            }
            if st.ret[i].is_none() {
                if let Some(p) = out.ret {
                    st.ret[i] = Some(p);
                    changed = true;
                }
            }
            let o2 = eval(graph, i, tgt, &st, false);
            for (pos, pname) in graph.fns[i].params.iter().enumerate() {
                if let Some(prov) = o2.env.get(pname) {
                    st.out[i].entry(pos).or_insert_with(|| {
                        changed = true;
                        prov.clone()
                    });
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for (i, tgt) in targets.iter().enumerate() {
        let f = &graph.fns[i];
        if f.is_test {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        let out = eval(graph, i, tgt, &st, true);
        let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
        for h in out.hits {
            if !seen.insert((h.line, h.what.clone())) {
                continue;
            }
            let rule = match h.kind {
                SinkKind::AllocSize => Rule::D012,
                SinkKind::Index | SinkKind::Arith => Rule::D013,
            };
            if ctx.is_allowed(rule, h.line - 1) {
                continue;
            }
            let mut chain = h.prov.path.clone();
            let q = f.qualified();
            if chain.last() != Some(&q) {
                chain.push(q);
            }
            findings.push(Finding {
                rule,
                file: f.file.clone(),
                line: h.line,
                snippet: ctx.snippet(h.line),
                note: Some(format!(
                    "`{}` carries {} into {} without a dominating bound check, via {}",
                    h.name,
                    h.prov.desc,
                    h.what,
                    render_chain(&chain)
                )),
                severity: rule.severity(),
            });
        }
    }
    findings.extend(lock_rules(graph, files));
    findings
}

// ---------------------------------------------------------------------------
// D014: lock-order cycles and guards held across blocking calls
// ---------------------------------------------------------------------------

/// True for a usable lock identity (the dataflow pass emits `?` when it
/// cannot name the lock).
fn named(l: &str) -> bool {
    l != "?"
}

/// Builds the serve-crate lock rules.
fn lock_rules(graph: &CallGraph, files: &BTreeMap<String, FileCtx>) -> Vec<Finding> {
    let n = graph.fns.len();
    let in_serve = |f: &crate::parser::FnDef| !f.is_test && f.file.starts_with("crates/serve/");

    // --- transitive "does this fn block?", seeded at direct socket I/O
    // sites in the serving crate and propagated caller-ward.
    let mut blocks: Vec<Option<String>> = graph
        .fns
        .iter()
        .map(|f| {
            in_serve(f)
                .then(|| f.flow.blocking.first().map(|s| s.what.clone()))
                .flatten()
        })
        .collect();
    for _ in 0..n.min(24) {
        let mut changed = false;
        for i in 0..n {
            if blocks[i].is_some() || graph.fns[i].is_test {
                continue;
            }
            let hit = graph.edges[i]
                .iter()
                .find_map(|&c| blocks[c].as_ref().map(|d| (c, d.clone())));
            if let Some((c, d)) = hit {
                blocks[i] = Some(format!("{} → {}", graph.fns[c].qualified(), d));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- transitive "which locks can this fn acquire?".
    let mut acq: Vec<BTreeSet<String>> = graph
        .fns
        .iter()
        .map(|f| {
            if in_serve(f) {
                f.flow
                    .acquires
                    .iter()
                    .filter(|a| named(&a.lock))
                    .map(|a| a.lock.clone())
                    .collect()
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    for _ in 0..n.min(24) {
        let mut changed = false;
        for i in 0..n {
            if graph.fns[i].is_test {
                continue;
            }
            let mut add: Vec<String> = Vec::new();
            for &c in &graph.edges[i] {
                for l in &acq[c] {
                    if !acq[i].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                acq[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- the lock-acquisition-order graph: an edge `h → l` means `l` was
    // (or can be, through a guarded call) acquired while `h` was held.
    struct AcqSite {
        from: String,
        to: String,
        fn_idx: usize,
        line: usize,
        via: Option<usize>,
    }
    let mut order: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut sites: Vec<AcqSite> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !in_serve(f) {
            continue;
        }
        for a in &f.flow.acquires {
            if !named(&a.lock) {
                continue;
            }
            for h in a.held.iter().filter(|h| named(h)) {
                order.entry(h.clone()).or_default().insert(a.lock.clone());
                sites.push(AcqSite {
                    from: h.clone(),
                    to: a.lock.clone(),
                    fn_idx: i,
                    line: a.line,
                    via: None,
                });
            }
        }
        for g in &f.flow.guarded_calls {
            let held: Vec<&String> = g.held.iter().filter(|h| named(h)).collect();
            if held.is_empty() {
                continue;
            }
            for t in graph.resolve(i, &g.callee, &g.kind) {
                for l in acq[t].clone() {
                    for h in &held {
                        order.entry((*h).clone()).or_default().insert(l.clone());
                        sites.push(AcqSite {
                            from: (*h).clone(),
                            to: l.clone(),
                            fn_idx: i,
                            line: g.line,
                            via: Some(t),
                        });
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    let mut emitted: BTreeSet<(String, usize, String)> = BTreeSet::new();

    // Cycle check: acquiring `to` while holding `from` deadlocks if some
    // other path acquires `from` while holding `to` (transitively).
    for s in &sites {
        if !reaches(&order, &s.to, &s.from) {
            continue;
        }
        let f = &graph.fns[s.fn_idx];
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        if ctx.is_allowed(Rule::D014, s.line - 1) {
            continue;
        }
        let how = match s.via {
            Some(t) => format!("via {}", graph.fns[t].qualified()),
            None => String::from("directly"),
        };
        let key = (f.file.clone(), s.line, format!("cycle:{}:{}", s.from, s.to));
        if !emitted.insert(key) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::D014,
            file: f.file.clone(),
            line: s.line,
            snippet: ctx.snippet(s.line),
            note: Some(format!(
                "{} acquires `{}` while holding `{}` ({how}) — the reverse order is also taken, closing a lock-order cycle",
                f.qualified(),
                s.to,
                s.from,
            )),
            severity: Rule::D014.severity(),
        });
    }

    // Guard held across a call that transitively blocks on socket I/O.
    for (i, f) in graph.fns.iter().enumerate() {
        if !in_serve(f) {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        for g in &f.flow.guarded_calls {
            let Some(h) = g.held.iter().find(|h| named(h)) else {
                continue;
            };
            if ctx.is_allowed(Rule::D014, g.line - 1) {
                continue;
            }
            for t in graph.resolve(i, &g.callee, &g.kind) {
                let Some(d) = &blocks[t] else { continue };
                let key = (f.file.clone(), g.line, format!("block:{h}"));
                if !emitted.insert(key) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::D014,
                    file: f.file.clone(),
                    line: g.line,
                    snippet: ctx.snippet(g.line),
                    note: Some(format!(
                        "guard on `{h}` held across a blocking call: {} → {d}",
                        graph.fns[t].qualified(),
                    )),
                    severity: Rule::D014.severity(),
                });
                break;
            }
        }
    }

    findings
}

/// Is `to` reachable from `from` in the lock-order graph?
fn reaches(order: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = vec![from];
    while let Some(u) = stack.pop() {
        if !seen.insert(u) {
            continue;
        }
        if let Some(next) = order.get(u) {
            for v in next {
                if v == to {
                    return true;
                }
                stack.push(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn mine_one(src: &str) -> FnTaint {
        let fns = parse_file("crates/serve/src/x.rs", src, false);
        fns[0].taint.clone()
    }

    #[test]
    fn read_fill_taints_buffer_and_reaches_index_sink() {
        let t = mine_one(
            "fn f(stream: &mut TcpStream, buf: &mut [u8], table: &[u8]) -> u8 {\n\
                 stream.read(&mut buf[..]).ok();\n\
                 let n = buf[0] as usize;\n\
                 table[n]\n\
             }\n",
        );
        assert!(t
            .ops
            .iter()
            .any(|o| matches!(o, TaintOp::SourceFill { dst, .. } if dst == "buf")));
        assert!(t.ops.iter().any(|o| matches!(
            o,
            TaintOp::Sink {
                kind: SinkKind::Index,
                ..
            }
        )));
        assert!(t
            .ops
            .iter()
            .any(|o| matches!(o, TaintOp::Return { names } if names.contains(&"n".into()))));
    }

    #[test]
    fn comparison_in_condition_emits_checks() {
        let t = mine_one(
            "fn f(len: usize) -> usize {\n\
                 if len > MAX {\n\
                     return 0;\n\
                 }\n\
                 len\n\
             }\n",
        );
        assert!(t
            .ops
            .iter()
            .any(|o| matches!(o, TaintOp::Check { name } if name == "len")));
    }

    #[test]
    fn sanitizer_marks_assign() {
        let t = mine_one(
            "fn f(len: usize) {\n\
                 let capped = len.min(64);\n\
                 let raw = len + 1;\n\
                 scratch.reserve(capped);\n\
             }\n",
        );
        let sanitized: Vec<bool> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                TaintOp::Assign { sanitized, .. } => Some(*sanitized),
                _ => None,
            })
            .collect();
        assert_eq!(sanitized, vec![true, false]);
        assert!(t.ops.iter().any(|o| matches!(
            o,
            TaintOp::Sink {
                kind: SinkKind::AllocSize,
                ..
            }
        )));
    }

    #[test]
    fn env_args_is_a_source_only_in_seeded_paths() {
        let serve = mine_one("fn f() { let a = std::env::args().count(); }\n");
        assert!(serve.ops.iter().any(|o| matches!(
            o,
            TaintOp::Assign {
                source: Some(_),
                ..
            }
        )));
        let fns = parse_file(
            "crates/audit/src/x.rs",
            "fn f() { let a = std::env::args().count(); }\n",
            false,
        );
        assert!(!fns[0].taint.ops.iter().any(|o| matches!(
            o,
            TaintOp::Assign {
                source: Some(_),
                ..
            }
        )));
    }

    #[test]
    fn interprocedural_chain_reaches_alloc_sink() {
        // read() taints buf in `recv`; the derived length flows through
        // `frame_len` into `alloc_for`, whose with_capacity is the sink.
        let src = "\
            fn recv(stream: &mut TcpStream) -> usize {\n\
                let mut hdr = [0u8; 4];\n\
                stream.read_exact(&mut hdr).ok();\n\
                let len = frame_len(hdr);\n\
                alloc_for(len)\n\
            }\n\
            fn frame_len(hdr: [u8; 4]) -> usize {\n\
                let n = u32::from_le_bytes(hdr);\n\
                let out = n as usize;\n\
                out\n\
            }\n\
            fn alloc_for(len: usize) -> usize {\n\
                let v: Vec<u8> = Vec::with_capacity(len);\n\
                v.capacity()\n\
            }\n";
        let fns = parse_file("crates/serve/src/x.rs", src, false);
        let graph = CallGraph::build(fns);
        let mut files = BTreeMap::new();
        files.insert(
            "crates/serve/src/x.rs".to_string(),
            FileCtx {
                lines: src.lines().map(String::from).collect(),
                allowed: Vec::new(),
            },
        );
        let findings = check(&graph, &files);
        let d012: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::D012).collect();
        assert_eq!(d012.len(), 1, "{findings:?}");
        let note = d012[0].note.as_deref().unwrap();
        assert!(note.contains("recv"), "{note}");
        assert!(note.contains("alloc_for"), "{note}");
    }

    #[test]
    fn bound_check_clears_taint() {
        let src = "\
            fn recv(stream: &mut TcpStream) -> usize {\n\
                let mut hdr = [0u8; 4];\n\
                stream.read_exact(&mut hdr).ok();\n\
                let len = hdr[0] as usize;\n\
                if len > 64 {\n\
                    return 0;\n\
                }\n\
                let v: Vec<u8> = Vec::with_capacity(len);\n\
                v.capacity()\n\
            }\n";
        let fns = parse_file("crates/serve/src/x.rs", src, false);
        let graph = CallGraph::build(fns);
        let mut files = BTreeMap::new();
        files.insert(
            "crates/serve/src/x.rs".to_string(),
            FileCtx {
                lines: src.lines().map(String::from).collect(),
                allowed: Vec::new(),
            },
        );
        let findings = check(&graph, &files);
        // The hdr[0] read itself is an index into locally-tainted hdr —
        // the with_capacity must NOT fire after the check.
        assert!(
            !findings.iter().any(|f| f.rule == Rule::D012),
            "{findings:?}"
        );
    }

    #[test]
    fn lock_cycle_and_blocking_guard_are_flagged() {
        let src = "\
            impl S {\n\
                fn ab(&self) {\n\
                    let ga = self.a.lock().unwrap();\n\
                    let gb = self.b.lock().unwrap();\n\
                    drop(gb);\n\
                    drop(ga);\n\
                }\n\
                fn ba(&self) {\n\
                    let gb = self.b.lock().unwrap();\n\
                    let ga = self.a.lock().unwrap();\n\
                    drop(ga);\n\
                    drop(gb);\n\
                }\n\
                fn pump(&self, stream: &mut TcpStream) {\n\
                    let g = self.a.lock().unwrap();\n\
                    self.relay(stream);\n\
                    drop(g);\n\
                }\n\
                fn relay(&self, stream: &mut TcpStream) {\n\
                    let mut b = [0u8; 8];\n\
                    stream.read_exact(&mut b).ok();\n\
                }\n\
            }\n";
        let fns = parse_file("crates/serve/src/x.rs", src, false);
        let graph = CallGraph::build(fns);
        let mut files = BTreeMap::new();
        files.insert(
            "crates/serve/src/x.rs".to_string(),
            FileCtx {
                lines: src.lines().map(String::from).collect(),
                allowed: Vec::new(),
            },
        );
        let findings = lock_rules(&graph, &files);
        let notes: Vec<&str> = findings.iter().filter_map(|f| f.note.as_deref()).collect();
        assert!(
            notes.iter().any(|n| n.contains("lock-order cycle")),
            "{notes:?}"
        );
        assert!(
            notes
                .iter()
                .any(|n| n.contains("held across a blocking call")),
            "{notes:?}"
        );
    }

    #[test]
    fn taint_decisions_are_file_order_independent() {
        let a = "fn alloc_for(len: usize) { let v: Vec<u8> = Vec::with_capacity(len); v.capacity(); }\n";
        let b = "fn recv(stream: &mut TcpStream) {\n\
                     let mut hdr = [0u8; 4];\n\
                     stream.read_exact(&mut hdr).ok();\n\
                     let len = hdr[0] as usize;\n\
                     alloc_for(len);\n\
                 }\n";
        let order1 = {
            let mut fns = parse_file("crates/serve/src/a.rs", a, false);
            fns.extend(parse_file("crates/serve/src/b.rs", b, false));
            fns
        };
        let order2 = {
            let mut fns = parse_file("crates/serve/src/b.rs", b, false);
            fns.extend(parse_file("crates/serve/src/a.rs", a, false));
            fns
        };
        let mut files = BTreeMap::new();
        for (rel, src) in [("crates/serve/src/a.rs", a), ("crates/serve/src/b.rs", b)] {
            files.insert(
                rel.to_string(),
                FileCtx {
                    lines: src.lines().map(String::from).collect(),
                    allowed: Vec::new(),
                },
            );
        }
        let key = |fs: Vec<Finding>| -> Vec<(String, String, usize)> {
            let mut k: Vec<_> = fs
                .into_iter()
                .map(|f| (f.rule.id().to_string(), f.file, f.line))
                .collect();
            k.sort();
            k
        };
        let f1 = key(check(&CallGraph::build(order1), &files));
        let f2 = key(check(&CallGraph::build(order2), &files));
        assert_eq!(f1, f2);
        assert!(!f1.is_empty(), "the D012 sink must fire in both orders");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn random_source_to_sink_chains_decide_deterministically(
            hops in 0usize..3,
            sink_kind in 0usize..3,
            sanitized in proptest::bool::ANY,
            san_slot in 0usize..5,
        ) {
            // Synthesize a chain of single-function "crates": f0 reads
            // untrusted bytes, f1..f_hops pass the value along with a
            // little arithmetic, and the last function spends it in a
            // randomly chosen sink. Optionally one function on the chain
            // bound-checks the value first.
            let last = hops + 1;
            let san_pos = sanitized.then(|| san_slot % (last + 1));
            let guard = |pos: usize| -> &'static str {
                if san_pos == Some(pos) {
                    "    if v > 4096 { return; }\n"
                } else {
                    ""
                }
            };
            let mut files: Vec<(String, String)> = Vec::new();
            let mut src0 = String::from(
                "fn f0(stream: &mut TcpStream) {\n\
                 \x20   let mut hdr = [0u8; 4];\n\
                 \x20   stream.read_exact(&mut hdr).ok();\n\
                 \x20   let v = hdr[0] as usize;\n",
            );
            src0.push_str(guard(0));
            src0.push_str("    f1(v);\n}\n");
            files.push(("crates/serve/src/g0.rs".to_string(), src0));
            for i in 1..=hops {
                let mut s = format!("fn f{i}(v: usize) {{\n");
                s.push_str(guard(i));
                s.push_str(&format!("    let w = v + {i};\n    f{}(w);\n}}\n", i + 1));
                files.push((format!("crates/serve/src/g{i}.rs"), s));
            }
            let mut sink_src = format!("fn f{last}(v: usize) {{\n");
            sink_src.push_str(guard(last));
            sink_src.push_str(match sink_kind {
                0 => "    let buf: Vec<u8> = Vec::with_capacity(v);\n    buf.capacity();\n",
                1 => "    let table = [0u8; 8];\n    table[v];\n",
                _ => "    v.wrapping_mul(3);\n",
            });
            sink_src.push_str("}\n");
            files.push((format!("crates/serve/src/g{last}.rs"), sink_src));

            let mut ctxs = BTreeMap::new();
            for (rel, src) in &files {
                ctxs.insert(
                    rel.clone(),
                    FileCtx {
                        lines: src.lines().map(String::from).collect(),
                        allowed: Vec::new(),
                    },
                );
            }
            let parse_all = |order: &[&(String, String)]| {
                let mut fns = Vec::new();
                for (rel, src) in order {
                    fns.extend(parse_file(rel, src, false));
                }
                fns
            };
            let key = |fs: Vec<Finding>| -> Vec<(String, String, usize)> {
                let mut k: Vec<_> = fs
                    .into_iter()
                    .map(|f| (f.rule.id().to_string(), f.file, f.line))
                    .collect();
                k.sort();
                k
            };
            let fwd: Vec<&(String, String)> = files.iter().collect();
            let rev: Vec<&(String, String)> = files.iter().rev().collect();
            let k_fwd = key(check(&CallGraph::build(parse_all(&fwd)), &ctxs));
            let k_fwd2 = key(check(&CallGraph::build(parse_all(&fwd)), &ctxs));
            let k_rev = key(check(&CallGraph::build(parse_all(&rev)), &ctxs));
            prop_assert_eq!(&k_fwd, &k_fwd2, "same inputs must decide identically");
            prop_assert_eq!(&k_fwd, &k_rev, "file order must not change taint decisions");

            let expect = if sink_kind == 0 { "D012" } else { "D013" };
            if san_pos.is_some() {
                prop_assert!(
                    k_fwd.is_empty(),
                    "a dominating bound check anywhere on the chain clears the sink; got {:?}",
                    k_fwd
                );
            } else {
                prop_assert!(
                    k_fwd.iter().any(|(rule, _, _)| rule == expect),
                    "unchecked chain of {} hops must reach the {} sink; got {:?}",
                    hops,
                    expect,
                    k_fwd
                );
            }
        }
    }
}
