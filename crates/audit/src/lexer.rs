//! A hand-rolled Rust lexer — the shared front end for every audit rule.
//!
//! The PR 3 engine classified source bytes with a per-line state machine
//! that got three things demonstrably wrong: raw strings containing `//`
//! or `"` leaked into the code channel, nested block comments closed at
//! the first `*/`, and `'a` lifetimes were sometimes swallowed as open
//! char literals. This module replaces that scan with a real tokenizer
//! over the whole file: raw strings with any `#` depth (`r"…"`,
//! `r##"…"##`, `br#"…"#`, `cr"…"`), nested `/* /* */ */` block comments,
//! doc comments, char-literal vs lifetime disambiguation, numeric
//! literals with exponents and suffixes, and joined multi-char operators
//! (`::`, `->`, `=>`, `..`, `..=`, `...`).
//!
//! Tokens carry byte spans into the original source plus a 1-based start
//! line, so both the line-oriented lexical rules (via [`mask_lines`]) and
//! the interprocedural item parser (via the token stream itself) consume
//! one front end and cannot disagree about what is code.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Simulator`, `_x`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A cooked or raw string/byte-string literal, entire span.
    Str,
    /// A numeric literal (`42`, `0.5f64`, `1e-3`, `0xFF`).
    Num,
    /// Punctuation; multi-char operators `::`, `->`, `=>`, `..`, `..=`,
    /// `...` come out as one token, everything else as single bytes.
    Punct,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment, nesting respected, possibly multi-line.
    BlockComment,
}

/// One lexed token: kind plus byte span plus 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// True for bytes that can continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// True for bytes that can start an identifier.
fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// Recognises a string-literal opener at `i`: returns
/// `(prefix_len_through_quote, n_hashes)` where `n_hashes` is `Some` for
/// raw strings. Handles `"`, `r"`, `r#"`, `b"`, `br#"`, `c"`, `cr#"`.
fn string_open(bytes: &[u8], i: usize) -> Option<(usize, Option<usize>)> {
    let mut j = i;
    // Optional `b`/`c` byte/C-string marker, then optional `r` raw marker.
    if j < bytes.len() && (bytes[j] == b'b' || bytes[j] == b'c') {
        j += 1;
    }
    let raw = j < bytes.len() && bytes[j] == b'r';
    if raw {
        j += 1;
        let mut hashes = 0;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'"' {
            return Some((j + 1 - i, Some(hashes)));
        }
        return None;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        Some((j + 1 - i, None))
    } else {
        None
    }
}

/// Lexes `src` into a complete token stream. Total: malformed input never
/// panics — an unterminated literal or comment simply runs to the end of
/// the file as one token.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // A shebang line (`#!/usr/bin/env …`) is valid at the very start of a
    // Rust source file and is not a token. `#![…]` is an inner attribute,
    // not a shebang, so it must still lex normally.
    if bytes.starts_with(b"#!") && bytes.get(2) != Some(&b'[') {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }

    // Advances over `n` bytes, counting newlines.
    let count_lines = |from: usize, to: usize| -> usize {
        bytes[from..to].iter().filter(|&&b| b == b'\n').count()
    };

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if b == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
            if bytes[i + 1] == b'*' {
                // Nested block comment: track depth.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    start,
                    end: i,
                    line: start_line,
                });
                continue;
            }
        }

        // String literals, possibly prefixed (`r`, `b`, `br`, `c`, `cr`).
        // A bare prefix letter that is actually an identifier head
        // (`radio`, `bytes`) never matches string_open, so this arm only
        // fires on genuine literals.
        if let Some((open_len, hashes)) = (b == b'"' || b == b'r' || b == b'b' || b == b'c')
            .then(|| string_open(bytes, i))
            .flatten()
        {
            i += open_len;
            match hashes {
                Some(n) => {
                    // Raw: scan for `"` followed by n hashes, no escapes.
                    loop {
                        if i >= bytes.len() {
                            break;
                        }
                        if bytes[i] == b'"'
                            && bytes[i + 1..]
                                .iter()
                                .take(n)
                                .filter(|&&h| h == b'#')
                                .count()
                                == n
                        {
                            i += 1 + n;
                            break;
                        }
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                None => {
                    // Cooked: backslash escapes, may span lines.
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i = (i + 2).min(bytes.len()),
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Byte-char literal `b'x'`.
        if b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
            i += 1; // position on the quote; fall through to char logic
            let end = char_or_lifetime_end(bytes, i);
            i = end.0;
            tokens.push(Token {
                kind: TokenKind::Char,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            let (end, is_char) = char_or_lifetime_end(bytes, i);
            tokens.push(Token {
                kind: if is_char {
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                },
                start,
                end,
                line: start_line,
            });
            line += count_lines(start, end);
            i = end;
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Numeric literals: digits, underscores, radix prefixes, one
        // decimal point when followed by a digit, exponents, suffixes.
        if b.is_ascii_digit() {
            i += 1;
            if i < bytes.len()
                && (bytes[i] == b'x' || bytes[i] == b'o' || bytes[i] == b'b')
                && b == b'0'
            {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not the `..` of a range.
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else if i < bytes.len()
                    && bytes[i] == b'.'
                    && (i + 1 >= bytes.len()
                        || (bytes[i + 1] != b'.' && !is_ident_start(bytes[i + 1])))
                {
                    // Trailing dot float like `1.` (not `1..` or `1.max`).
                    i += 1;
                }
                // Exponent.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            i += 1;
                        }
                    }
                }
            }
            // Type suffix (`u32`, `f64`, `usize`).
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Num,
                start,
                end: i,
                line: start_line,
            });
            continue;
        }

        // Multi-char operators the parser wants joined.
        let joined: usize = if bytes[i..].starts_with(b"..=") || bytes[i..].starts_with(b"...") {
            3
        } else if bytes[i..].starts_with(b"::")
            || bytes[i..].starts_with(b"->")
            || bytes[i..].starts_with(b"=>")
            || bytes[i..].starts_with(b"..")
        {
            2
        } else {
            1
        };
        i += joined;
        tokens.push(Token {
            kind: TokenKind::Punct,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// Starting at a `'` byte, decides char literal vs lifetime and returns
/// `(end_offset, is_char_literal)`.
///
/// Disambiguation: `'` followed by a backslash is always a char literal
/// (scan its escape to the closing quote). Otherwise, if exactly one
/// character is followed by a closing `'`, it is a char literal (`'a'`);
/// if identifier characters follow without a closing quote, it is a
/// lifetime (`'a`, `'static`, `'_`).
fn char_or_lifetime_end(bytes: &[u8], quote: usize) -> (usize, bool) {
    let mut i = quote + 1;
    if i >= bytes.len() {
        return (i, false);
    }
    if bytes[i] == b'\\' {
        // Escape: `'\n'`, `'\\'`, `'\u{1F600}'` — scan to unescaped quote.
        i += 2; // skip backslash and the escaped byte
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return ((i + 1).min(bytes.len()), true);
    }
    // Multi-byte UTF-8 scalar: step over one whole char.
    let ch_len = utf8_len(bytes[i]);
    if i + ch_len < bytes.len() && bytes[i + ch_len] == b'\'' && bytes[i] != b'\'' {
        return (i + ch_len + 1, true);
    }
    // Lifetime: consume identifier characters.
    if is_ident_start(bytes[i]) || bytes[i] >= 0x80 {
        while i < bytes.len() && (is_ident_continue(bytes[i]) || bytes[i] >= 0x80) {
            i += 1;
        }
        return (i, false);
    }
    // Stray quote (malformed): emit just the quote as a lifetime-ish token.
    (quote + 1, false)
}

/// Length in bytes of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Per-line `(code, comment)` views of a file, reconstructed from the
/// token stream: string literals collapse to `"`, char literals to `' '`,
/// comments route to the comment channel, original spacing of everything
/// else is preserved. This is the line-rule view of the source — the
/// replacement for PR 3's per-line state machine.
pub fn mask_lines(src: &str) -> Vec<(String, String)> {
    let n_lines = src.lines().count().max(1);
    let mut code = vec![String::new(); n_lines];
    let mut comment = vec![String::new(); n_lines];
    let tokens = lex(src);
    let bytes = src.as_bytes();

    let mut prev_end = 0usize;
    let mut cur_line = 0usize; // 0-based
    for tok in &tokens {
        // Replay inter-token whitespace, advancing the line counter.
        for &b in &bytes[prev_end..tok.start] {
            if b == b'\n' {
                cur_line += 1;
            } else if let Some(slot) = code.get_mut(cur_line) {
                slot.push(b as char);
            }
        }
        let text = tok.text(src);
        match tok.kind {
            TokenKind::LineComment => {
                let body = text.trim_start_matches('/').trim_start_matches('!');
                if let Some(slot) = comment.get_mut(cur_line) {
                    slot.push_str(body);
                }
            }
            TokenKind::BlockComment => {
                // Distribute the comment body line by line.
                let inner = text
                    .strip_prefix("/*")
                    .and_then(|t| t.strip_suffix("*/"))
                    .unwrap_or(text);
                for (k, part) in inner.split('\n').enumerate() {
                    if let Some(slot) = comment.get_mut(cur_line + k) {
                        slot.push_str(part);
                    }
                }
                cur_line += text.matches('\n').count();
            }
            TokenKind::Str => {
                if let Some(slot) = code.get_mut(cur_line) {
                    slot.push('"');
                }
                cur_line += text.matches('\n').count();
            }
            TokenKind::Char => {
                if let Some(slot) = code.get_mut(cur_line) {
                    slot.push_str("' '");
                }
            }
            _ => {
                if let Some(slot) = code.get_mut(cur_line) {
                    slot.push_str(text);
                }
                cur_line += text.matches('\n').count();
            }
        }
        prev_end = tok.end;
    }
    code.into_iter().zip(comment).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    // --- regression: raw strings hiding `//` and `"` --------------------

    #[test]
    fn raw_string_containing_line_comment_marker_stays_a_string() {
        let src = r##"let s = r#"no // comment and no "quote" escape"#; s.unwrap();"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("no // comment")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
        // Code after the raw string is still lexed.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_string_hash_depths_nest() {
        let src = r####"let s = r##"inner "# still open"##; x()"####;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("still open"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
    }

    #[test]
    fn byte_and_c_string_prefixes_are_strings() {
        let toks = kinds(r##"b"ab" br#"cd"# c"ef""##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
    }

    // --- regression: nested block comments -------------------------------

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still comment */ fn after() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still comment */"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "after"));
    }

    #[test]
    fn unterminated_block_comment_swallows_to_eof() {
        let toks = kinds("/* open /* deeper */ never closed\ncode()");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
    }

    // --- regression: lifetimes vs char literals ---------------------------

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn char_literals_including_escapes_and_unicode() {
        let toks = kinds(r"let a = 'x'; let b = '\n'; let c = '\u{1F600}'; let d = '€';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            4
        );
    }

    #[test]
    fn lifetime_followed_by_generics_close() {
        let toks = kinds("struct S<'a>(&'a u8);");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && *t == "'a"));
    }

    // --- general ---------------------------------------------------------

    #[test]
    fn joined_operators_and_numbers() {
        let toks = kinds("a::b -> c => 0..=9 ... 1.5e-3f64 0xFF");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "..=", "..."]);
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(nums, vec!["0", "9", "1.5e-3f64", "0xFF"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "fn a() {}\n/* c1\nc2 */\nfn b() {}\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn mask_lines_routes_channels() {
        let lines = mask_lines("let x = \"str // not comment\"; // real comment\n");
        assert_eq!(lines[0].0, "let x = \"; ");
        assert_eq!(lines[0].1, " real comment");
    }

    #[test]
    fn mask_lines_hides_raw_string_unwrap() {
        let src = "let s = r#\"don't .unwrap() here\"#;\n";
        let lines = mask_lines(src);
        assert!(!lines[0].0.contains("unwrap"));
    }

    #[test]
    fn mask_lines_multiline_comment_spans() {
        let src = "code1();\n/* audit: allow(D001, reason = \"x\")\nmore */\ncode2();\n";
        let lines = mask_lines(src);
        assert!(lines[1].1.contains("audit: allow"));
        assert_eq!(lines[3].0, "code2();");
    }

    #[test]
    fn nested_raw_strings_at_mixed_hash_depths_in_macro_bodies() {
        // An r##"…"## string may contain a complete r#"…"# string; the
        // outer delimiter depth decides where the token ends.
        let src = "write!(f, r##\"outer r#\"inner\"# still outer\"##, x);\nlet y = 1;\n";
        let toks = lex(src);
        let raw: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(raw, vec!["r##\"outer r#\"inner\"# still outer\"##"]);
        let y = toks
            .iter()
            .find(|t| t.text(src) == "y")
            .expect("y survives");
        assert_eq!(y.line, 2);
    }

    #[test]
    fn lifetime_after_less_than_is_not_a_char_literal() {
        // `<'static>` must not start a char/byte-string literal scan that
        // would swallow the rest of the file.
        let src = "fn f<'static>(x: &'static str) -> &'static str { 'q'; x }\n";
        let toks = lex(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(idents.contains(&"str"), "idents: {idents:?}");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'q'"], "only the real char literal");
    }

    #[test]
    fn shebang_line_is_skipped_but_inner_attributes_are_not() {
        let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
        let toks = lex(src);
        assert_eq!(toks.first().map(|t| t.text(src)), Some("fn"));
        assert_eq!(
            toks.first().map(|t| t.line),
            Some(2),
            "line count survives the skip"
        );

        // `#![…]` is an inner attribute, not a shebang.
        let attr = "#![allow(dead_code)]\nfn main() {}\n";
        let toks = lex(attr);
        assert_eq!(toks.first().map(|t| t.text(attr)), Some("#"));
    }
}
