//! The workspace call graph: name-based resolution of the call sites the
//! [`parser`](crate::parser) mined, plus deterministic reachability.
//!
//! Resolution policy (conservative, zero type inference):
//!
//! * **Free calls** `name(...)` resolve to free functions only — same
//!   module first, then same file, then same crate, then workspace-wide.
//!   A method of the same name never captures a free call (shadowing
//!   stays sound).
//! * **Direct self calls** `self.name(...)` resolve to the method of the
//!   enclosing impl/trait type when one exists; otherwise they fall back
//!   to every method of that name (trait default methods live on the
//!   trait type).
//! * **Other method calls** `recv.name(...)` resolve to *every* workspace
//!   method named `name` — the conservative answer for trait-object and
//!   generic dispatch (`Box<dyn App>`, `A: Agent`).
//! * **Qualified calls** `Head::name(...)` resolve to `Head`'s method if
//!   the workspace defines one, else to free functions named `name`
//!   (module-qualified paths like `helpers::score`).
//!
//! Calls that resolve to nothing are std/vendored-API calls and simply
//! add no edges. Edges are deduplicated and sorted, and BFS visits in
//! index order, so reachability and the recorded shortest call chains are
//! byte-for-byte reproducible run to run.

use crate::parser::{CallKind, FnDef};
use std::collections::BTreeMap;

/// The resolved workspace call graph over all parsed functions.
pub struct CallGraph {
    /// The parsed functions, in file-then-source order.
    pub fns: Vec<FnDef>,
    /// `edges[i]` = sorted, deduplicated callee indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
    /// Free functions by bare name (non-test only).
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by bare name (non-test only).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by `(owner, name)` (non-test only).
    methods_by_owner: BTreeMap<(String, String), Vec<usize>>,
}

/// Strips a workspace-relative path to its crate root (`crates/sim/` or
/// `src/`), the granularity used for same-crate resolution preferences.
fn crate_root(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        match rest.find('/') {
            Some(end) => rel.get(..7 + end + 1).unwrap_or(rel),
            None => rel,
        }
    } else {
        match rel.find('/') {
            Some(end) => rel.get(..end + 1).unwrap_or(rel),
            None => rel,
        }
    }
}

impl CallGraph {
    /// Builds the graph from parsed functions. Test functions participate
    /// as callees only if a non-test function actually names them — roots
    /// and rule reporting both exclude them downstream.
    pub fn build(fns: Vec<FnDef>) -> CallGraph {
        // Lookup indexes, retained for per-call-site resolution by the
        // taint layer. BTreeMap: lookups only, but ordered anyway so
        // that no future iteration can introduce nondeterminism.
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue; // never resolve *into* test code
            }
            match &f.owner {
                None => free_by_name.entry(f.name.clone()).or_default().push(i),
                Some(o) => {
                    methods_by_name.entry(f.name.clone()).or_default().push(i);
                    methods_by_owner
                        .entry((o.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        let mut g = CallGraph {
            fns,
            edges: Vec::new(),
            free_by_name,
            methods_by_name,
            methods_by_owner,
        };
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(g.fns.len());
        for (i, f) in g.fns.iter().enumerate() {
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                out.extend(g.resolve(i, &call.name, &call.kind));
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        g.edges = edges;
        g
    }

    /// Resolves one call site in `fns[caller]` to its candidate callee
    /// indices under the module/impl-scoped policy documented above.
    pub fn resolve(&self, caller: usize, name: &str, kind: &CallKind) -> Vec<usize> {
        let Some(f) = self.fns.get(caller) else {
            return Vec::new();
        };
        match kind {
            CallKind::Free => {
                let Some(cands) = self.free_by_name.get(name) else {
                    return Vec::new();
                };
                // Narrow by proximity: same module+file, then same file,
                // then same crate, then anywhere.
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| self.fns.get(c).is_some_and(|g| g.file == f.file))
                    .collect();
                let same_mod: Vec<usize> = same_file
                    .iter()
                    .copied()
                    .filter(|&c| self.fns.get(c).is_some_and(|g| g.module == f.module))
                    .collect();
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        self.fns
                            .get(c)
                            .is_some_and(|g| crate_root(&g.file) == crate_root(&f.file))
                    })
                    .collect();
                if !same_mod.is_empty() {
                    same_mod
                } else if !same_file.is_empty() {
                    same_file
                } else if !same_crate.is_empty() {
                    same_crate
                } else {
                    cands.clone()
                }
            }
            CallKind::Method { on_self } => {
                let scoped = f
                    .owner
                    .clone()
                    .filter(|_| *on_self)
                    .and_then(|o| self.methods_by_owner.get(&(o, name.to_string())));
                match scoped {
                    Some(ms) => ms.clone(),
                    None => self.methods_by_name.get(name).cloned().unwrap_or_default(),
                }
            }
            CallKind::Qualified { head } => {
                if let Some(ms) = self.methods_by_owner.get(&(head.clone(), name.to_string())) {
                    ms.clone()
                } else if let Some(cands) = self.free_by_name.get(name) {
                    // Module-qualified free call (`helpers::f()`): accept
                    // free fns whose module path ends with the head
                    // segment, or any when head is a crate-ish qualifier.
                    let crate_ish = matches!(head.as_str(), "crate" | "self" | "super");
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| {
                            crate_ish
                                || self.fns.get(c).is_some_and(|g| {
                                    g.module.last().map(String::as_str) == Some(head)
                                })
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            }
            CallKind::Macro => Vec::new(),
        }
    }

    /// Indices of non-test functions whose qualified name ends with any of
    /// `suffixes` (`"Simulator::run"`) or whose bare name equals a suffix
    /// without `::` (`"predict_row"`).
    pub fn roots(&self, suffixes: &[&str]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test)
            .filter(|(_, f)| {
                suffixes.iter().any(|s| {
                    if s.contains("::") {
                        let q = f.qualified();
                        q == *s || q.ends_with(&format!("::{s}"))
                    } else {
                        f.name == *s
                    }
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `roots`: returns, for each function index, `Some(parent)`
    /// if reachable (`parent == usize::MAX` for a root). Cycles (mutual
    /// recursion) terminate because visited nodes are never re-enqueued.
    pub fn reachable(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for r in sorted_roots {
            if let Some(slot @ None) = parent.get_mut(r) {
                *slot = Some(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            let callees = self.edges.get(u).map(Vec::as_slice).unwrap_or(&[]);
            for &v in callees {
                if self.fns.get(v).is_some_and(|f| f.is_test) {
                    continue;
                }
                if let Some(slot @ None) = parent.get_mut(v) {
                    *slot = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The discovery chain of `idx` back to its BFS root, as qualified
    /// names root-first (capped so messages stay readable).
    pub fn chain(&self, parent: &[Option<usize>], idx: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = idx;
        for _ in 0..64 {
            let Some(f) = self.fns.get(cur) else {
                break;
            };
            rev.push(f.qualified());
            match parent.get(cur) {
                Some(Some(p)) if *p != usize::MAX => cur = *p,
                _ => break,
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let mut fns = Vec::new();
        for (rel, src) in files {
            fns.extend(parse_file(rel, src, false));
        }
        CallGraph::build(fns)
    }

    fn idx(g: &CallGraph, q: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qualified() == q)
            .unwrap_or_else(|| panic!("no fn {q}"))
    }

    #[test]
    fn mutual_recursion_terminates_and_reaches_both() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\nfn main_like() { ping(); }\n",
        )]);
        let roots = g.roots(&["main_like"]);
        let parent = g.reachable(&roots);
        assert!(parent[idx(&g, "ping")].is_some());
        assert!(parent[idx(&g, "pong")].is_some());
    }

    #[test]
    fn cross_crate_method_edges() {
        let g = graph_of(&[
            (
                "crates/sim/src/simulator.rs",
                "impl Simulator { fn run(&mut self) { self.agent.on_packet(1); } }\n",
            ),
            (
                "crates/routing/src/agent.rs",
                "impl FloodAgent { fn on_packet(&mut self, x: u32) { self.table[0]; } }\n",
            ),
        ]);
        let parent = g.reachable(&g.roots(&["Simulator::run"]));
        assert!(
            parent[idx(&g, "FloodAgent::on_packet")].is_some(),
            "conservative dispatch must cross crates"
        );
    }

    #[test]
    fn shadowed_free_fn_beats_method_of_same_name() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn score() {}\n\
             impl Model { fn score(&self) { dangerous(); } }\n\
             fn dangerous() { Some(1).unwrap(); }\n\
             fn root() { score(); }\n",
        )]);
        let parent = g.reachable(&g.roots(&["root"]));
        // The bare call resolves to the free fn, not Model::score.
        assert!(parent[idx(&g, "score")].is_some());
        assert!(parent[idx(&g, "Model::score")].is_none());
        assert!(parent[idx(&g, "dangerous")].is_none());
    }

    #[test]
    fn self_calls_prefer_the_enclosing_impl() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) { Some(1).unwrap(); } }\n",
        )]);
        let parent = g.reachable(&g.roots(&["A::go"]));
        assert!(parent[idx(&g, "A::step")].is_some());
        assert!(parent[idx(&g, "B::step")].is_none());
    }

    #[test]
    fn free_calls_prefer_same_module_then_same_crate() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn root() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() { loop {} }\n"),
        ]);
        let parent = g.reachable(&g.roots(&["root"]));
        let a_helper = g
            .fns
            .iter()
            .position(|f| f.file.starts_with("crates/a/") && f.name == "helper")
            .unwrap();
        let b_helper = g
            .fns
            .iter()
            .position(|f| f.file.starts_with("crates/b/") && f.name == "helper")
            .unwrap();
        assert!(parent[a_helper].is_some());
        assert!(parent[b_helper].is_none());
    }

    #[test]
    fn test_fns_are_not_resolution_targets() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn root() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} }\n",
        )]);
        let parent = g.reachable(&g.roots(&["root"]));
        let t = idx(&g, "tests::helper");
        assert!(parent[t].is_none());
    }

    #[test]
    fn chains_walk_back_to_the_root() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let parent = g.reachable(&g.roots(&["a"]));
        assert_eq!(g.chain(&parent, idx(&g, "c")), vec!["a", "b", "c"]);
    }

    #[test]
    fn qualified_calls_resolve_to_workspace_methods() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl Table { fn new() -> Table { Table } }\nfn root() { Table::new(); }\n",
        )]);
        let parent = g.reachable(&g.roots(&["root"]));
        assert!(parent[idx(&g, "Table::new")].is_some());
    }
}
