//! Intraprocedural value tracking over the [`lexer`](crate::lexer) token
//! stream — the dataflow layer under rules D009–D011.
//!
//! The pass runs once per function body (the [`parser`](crate::parser)
//! hands it the signature and body token ranges) and maintains a small
//! abstract environment of local bindings:
//!
//! * **`Const(v)`** — an integer literal, propagated through simple
//!   assignment chains and two-term `+ - * / & | << >>` folds. Earns its
//!   keep in D010: a cast whose operand provably fits the target type is
//!   *not* a finding.
//! * **`Wide(ty)`** — a value of a 64/128-bit integer type (`u64`, `i64`,
//!   `u128`, `i128`, `usize`, `isize`, `SimTime`), seeded from `let`
//!   annotations and parameter types.
//! * **`Float`** — an `f64`/`f32` binding (annotation, float literal, or
//!   chain copy).
//! * **`Parallel`** — the output of a parallel fan-out: `map_chunks(..)`
//!   or a collection of joined thread results.
//! * **`Handle`** — a `spawn(..)` join handle (or a collection of them).
//! * **`ParallelElem`** — the loop variable of a `for` over a `Parallel`
//!   or `Handle` binding.
//! * **`Guard`** — a lock guard (`.lock()` or the serve crate's poison-
//!   handling `lock(&..)` helper), live until `drop(guard)` or scope end.
//!   Reassignment through `Condvar::wait` keeps the guard live — the
//!   standard condvar loop is *not* a violation.
//!
//! Everything else is `Other` (tracked only so shadowing stays sound).
//! The lattice is deliberately flat: no branches are joined, bindings die
//! at the closing brace of their block, and `drop` kills along all paths
//! — imprecision always errs toward *fewer* findings, never false ones.
//!
//! Facts extracted per body (consumed by [`interproc`](crate::interproc)):
//!
//! * **reductions** (D009) — float accumulation whose input is a
//!   `Parallel`/`Handle` value: `.sum::<f64>()` / `.fold(0.0, ..)` on a
//!   chain rooted at one, or `+=` into a `Float` binding from a joined
//!   thread result.
//! * **casts** (D010) — `x as u32`-style narrowing where `x` is a tracked
//!   `Wide` binding and the target type cannot hold every source value
//!   (`Const` operands that fit are skipped).
//! * **locks** (D011) — direct stream I/O (`write_all`, `read_exact`,
//!   `flush`, …) under a live guard.
//! * **acquires / guarded_calls / blocking** (D014) — the raw material for
//!   the interprocedural lock-acquisition graph: every lock acquisition
//!   with the set of lock identities already held, every call made while a
//!   guard is live, and every direct blocking-I/O site. Nested
//!   acquisition itself is no longer flagged here — the taint layer's
//!   order-aware graph (D014) decides whether an ordering is consistent.

use crate::lexer::{Token, TokenKind};
use crate::parser::Site;

/// One lock acquisition with the lock identities already held at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcq {
    /// Identity of the acquired lock: the receiver field of `.lock()`
    /// (`queue` in `shared.queue.lock()`) or the last path segment of a
    /// `lock(&…)` helper argument.
    pub lock: String,
    /// Identities of locks already held, innermost last.
    pub held: Vec<String>,
    /// 1-based source line.
    pub line: usize,
}

/// A call made while at least one lock guard is live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedCall {
    /// Callee name.
    pub callee: String,
    /// How the call was written (drives call-graph resolution).
    pub kind: crate::parser::CallKind,
    /// Identities of the locks held at the call.
    pub held: Vec<String>,
    /// 1-based source line.
    pub line: usize,
}

/// The dataflow facts mined from one function body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BodyFacts {
    /// D009 sites: float reductions over parallel/chunked results.
    pub reductions: Vec<Site>,
    /// D010 sites: truncating casts on tracked wide values.
    pub casts: Vec<Site>,
    /// D011 sites: lock-discipline violations.
    pub locks: Vec<Site>,
    /// D014: every lock acquisition with the held-set at it.
    pub acquires: Vec<LockAcq>,
    /// D014: calls made while a guard is live.
    pub guarded_calls: Vec<GuardedCall>,
    /// D014: direct blocking-I/O sites (socket read/write/accept family).
    pub blocking: Vec<Site>,
}

/// Abstract value of a local binding.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    /// Integer constant (literal or folded).
    Const(i128),
    /// Wide integer value; payload is the source type name.
    Wide(String),
    /// `f64`/`f32` value.
    Float,
    /// Ordered results of a parallel fan-out.
    Parallel,
    /// A join handle (or collection of them).
    Handle,
    /// Element drawn from a `Parallel`/`Handle` collection.
    ParallelElem,
    /// A live lock guard; payload is the lock's identity (receiver field
    /// of `.lock()`, or the argument of the `lock(&…)` helper).
    Guard(String),
    /// Anything else — tracked for shadowing only.
    Other,
}

/// One tracked binding with its block depth (for scope-exit cleanup).
struct Bind {
    name: String,
    val: Val,
    depth: usize,
}

/// 64/128-bit integer types whose narrowing casts D010 polices.
/// `SimTime` is the simulator's u64 tick wrapper.
const WIDE_TYPES: [&str; 7] = ["u64", "i64", "u128", "i128", "usize", "isize", "SimTime"];

/// Bit width of a wide source type (usize/isize assessed at 64).
fn wide_bits(ty: &str) -> u32 {
    match ty {
        "u128" | "i128" => 128,
        _ => 64,
    }
}

/// Narrow cast targets: `(name, bits, signed)`.
const NARROW_TARGETS: [(&str, u32, bool); 6] = [
    ("u8", 8, false),
    ("u16", 16, false),
    ("u32", 32, false),
    ("i8", 8, true),
    ("i16", 16, true),
    ("i32", 32, true),
];

/// 64-bit targets that still truncate a 128-bit source. `usize` is in
/// the ISSUE's list because it is 32-bit on some deploy targets, but
/// flagging every `u64 → usize` index cast would drown the signal; the
/// pass holds it to the provable case (128-bit sources).
const NARROW_FROM_128: [(&str, u32, bool); 4] = [
    ("u64", 64, false),
    ("i64", 64, true),
    ("usize", 64, false),
    ("isize", 64, true),
];

/// Stream I/O methods a guard must not be held across (D011).
const IO_METHODS: [&str; 7] = [
    "write_all",
    "read_exact",
    "flush",
    "read_to_end",
    "read_to_string",
    "write_fmt",
    "write_vectored",
];

/// Method calls that block on a socket (D014 seeds; the interprocedural
/// pass only consults these for functions in the serving crate, where
/// `read`/`write`/`accept` receivers are streams and listeners).
const BLOCKING_METHODS: [&str; 12] = [
    "write_all",
    "read_exact",
    "flush",
    "read_to_end",
    "read_to_string",
    "write_fmt",
    "write_vectored",
    "read",
    "write",
    "accept",
    "incoming",
    "connect",
];

/// Calls never worth recording as guarded work: the lock/condvar
/// machinery itself and poison plumbing.
const GUARD_MACHINERY: [&str; 8] = [
    "lock",
    "wait",
    "notify_one",
    "notify_all",
    "drop",
    "unwrap_or_else",
    "into_inner",
    "unwrap",
];

/// Whether `v` fits in the `bits`-wide (un)signed target.
fn const_fits(v: i128, bits: u32, signed: bool) -> bool {
    if signed {
        let min = -(1i128 << (bits - 1));
        let max = (1i128 << (bits - 1)) - 1;
        v >= min && v <= max
    } else {
        v >= 0 && (bits >= 127 || v < (1i128 << bits))
    }
}

/// Parses an integer literal token (decimal/hex/octal/binary, `_`
/// separators, type suffix) to its value, if it is one.
fn int_literal(text: &str) -> Option<i128> {
    let t = text.replace('_', "");
    // Strip a type suffix (`u32`, `i64`, `usize`, …).
    let strip = |s: &str| -> String {
        for suf in [
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        ] {
            if let Some(core) = s.strip_suffix(suf) {
                if !core.is_empty() {
                    return core.to_string();
                }
            }
        }
        s.to_string()
    };
    let t = strip(&t);
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return i128::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o") {
        return i128::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b") {
        return i128::from_str_radix(bin, 2).ok();
    }
    if t.contains('.') || t.contains('e') || t.contains('E') {
        return None;
    }
    t.parse().ok()
}

/// Whether a numeric literal token is a float (`0.5`, `1e-3`, `2f64`).
fn float_literal(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f64")
        || text.ends_with("f32")
        || (text.contains(['e', 'E']) && !text.starts_with("0x") && !text.starts_with("0X"))
}

/// The analysis pass over one function. Construction borrows the token
/// stream and source text shared with the parser.
pub struct Analyzer<'s, 't> {
    src: &'s str,
    toks: &'t [Token],
    binds: Vec<Bind>,
    facts: BodyFacts,
}

/// Analyzes one function: `sig` is the token range of the signature
/// (from the `fn` keyword to the body `{`), `body` the range strictly
/// inside the braces.
pub fn analyze(src: &str, toks: &[Token], sig: (usize, usize), body: (usize, usize)) -> BodyFacts {
    let mut a = Analyzer {
        src,
        toks,
        binds: Vec::new(),
        facts: BodyFacts::default(),
    };
    a.seed_params(sig.0, sig.1);
    a.walk(body.0, body.1);
    a.facts
}

impl Analyzer<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Punct && self.text(i) == p
    }

    fn is_ident_tok(&self, i: usize) -> bool {
        i < self.toks.len() && self.toks[i].kind == TokenKind::Ident
    }

    fn lookup(&self, name: &str) -> Option<&Val> {
        self.binds
            .iter()
            .rev()
            .find(|b| b.name == name)
            .map(|b| &b.val)
    }

    fn bind(&mut self, name: &str, val: Val, depth: usize) {
        self.binds.push(Bind {
            name: name.to_string(),
            val,
            depth,
        });
    }

    /// Kills the named binding (a moved-out guard, `drop(g)`).
    fn kill(&mut self, name: &str) {
        if let Some(pos) = self.binds.iter().rposition(|b| b.name == name) {
            self.binds[pos].val = Val::Other;
        }
    }

    fn live_guard(&self) -> Option<&str> {
        self.binds
            .iter()
            .rev()
            .find(|b| matches!(b.val, Val::Guard(_)))
            .map(|b| b.name.as_str())
    }

    /// Identities of every live guard, outermost first.
    fn held_locks(&self) -> Vec<String> {
        self.binds
            .iter()
            .filter_map(|b| match &b.val {
                Val::Guard(lock) => Some(lock.clone()),
                _ => None,
            })
            .collect()
    }

    /// Seeds bindings from `name: Type` parameter pairs in the signature.
    fn seed_params(&mut self, start: usize, end: usize) {
        // Parameters live inside the first paren group of the signature.
        let Some(open) = (start..end).find(|&i| self.is_punct(i, "(")) else {
            return;
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, "(") {
                depth += 1;
            } else if self.is_punct(i, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && self.is_punct(i, ":") && i > 0 && self.is_ident_tok(i - 1) {
                let name = self.text(i - 1).to_string();
                // Type tokens run to the `,` (or close paren) at depth 1.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut par = 0i32;
                let mut ty: Vec<&str> = Vec::new();
                while j < end {
                    if self.is_punct(j, "<") {
                        angle += 1;
                    } else if self.is_punct(j, ">") {
                        angle -= 1;
                    } else if self.is_punct(j, "(") {
                        par += 1;
                    } else if self.is_punct(j, ")") {
                        if par == 0 {
                            break;
                        }
                        par -= 1;
                    } else if angle == 0 && par == 0 && self.is_punct(j, ",") {
                        break;
                    }
                    ty.push(self.text(j));
                    j += 1;
                }
                let val = Self::classify_type(&ty);
                if val != Val::Other {
                    self.bind(&name, val, 0);
                }
            }
            i += 1;
        }
    }

    /// Maps a type token sequence to an abstract value.
    fn classify_type(ty: &[&str]) -> Val {
        // A bare wide/float scalar, or one behind a `&` reference.
        let scalar: Vec<&&str> = ty.iter().filter(|t| **t != "&" && **t != "mut").collect();
        if scalar.len() == 1 {
            let t = *scalar[0];
            if WIDE_TYPES.contains(&t) {
                return Val::Wide(t.to_string());
            }
            if t == "f64" || t == "f32" {
                return Val::Float;
            }
        }
        if ty.contains(&"JoinHandle") {
            return Val::Handle;
        }
        if ty.contains(&"MutexGuard") {
            // Identity unknown from a type annotation alone.
            return Val::Guard(String::from("?"));
        }
        Val::Other
    }

    /// Index one past the end of the statement starting at `i`: the `;`
    /// or `{` at balanced depth, or `end`.
    fn stmt_end(&self, i: usize, end: usize) -> usize {
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        let mut j = i;
        while j < end {
            if self.is_punct(j, "(") {
                par += 1;
            } else if self.is_punct(j, ")") {
                par -= 1;
            } else if self.is_punct(j, "[") {
                brk += 1;
            } else if self.is_punct(j, "]") {
                brk -= 1;
            } else if self.is_punct(j, "{") {
                if par == 0 && brk == 0 && brc == 0 {
                    return j;
                }
                brc += 1;
            } else if self.is_punct(j, "}") {
                brc -= 1;
                if brc < 0 {
                    return j;
                }
            } else if self.is_punct(j, ";") && par == 0 && brk == 0 && brc == 0 {
                return j;
            }
            j += 1;
        }
        end
    }

    /// Classifies an initializer token range into an abstract value.
    fn classify_init(&self, start: usize, end: usize) -> Val {
        // Single token: literal or chained binding.
        if end == start + 1 {
            let t = &self.toks[start];
            match t.kind {
                TokenKind::Num => {
                    let text = self.text(start);
                    if float_literal(text) {
                        return Val::Float;
                    }
                    if let Some(v) = int_literal(text) {
                        return Val::Const(v);
                    }
                }
                TokenKind::Ident => {
                    if let Some(v) = self.lookup(self.text(start)) {
                        return v.clone();
                    }
                }
                _ => {}
            }
            return Val::Other;
        }
        // Two-term constant fold: `A op B` over literals/const bindings.
        if end == start + 3 && self.toks[start + 1].kind == TokenKind::Punct {
            let term = |i: usize| -> Option<i128> {
                match self.toks[i].kind {
                    TokenKind::Num => int_literal(self.text(i)),
                    TokenKind::Ident => match self.lookup(self.text(i)) {
                        Some(Val::Const(v)) => Some(*v),
                        _ => None,
                    },
                    _ => None,
                }
            };
            if let (Some(a), Some(b)) = (term(start), term(start + 2)) {
                let folded = match self.text(start + 1) {
                    "+" => a.checked_add(b),
                    "-" => a.checked_sub(b),
                    "*" => a.checked_mul(b),
                    "/" if b != 0 => Some(a / b),
                    "&" => Some(a & b),
                    "|" => Some(a | b),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Val::Const(v);
                }
            }
        }
        // `<expr> as <ty>` tail: the binding takes the cast-to type.
        if end >= start + 3
            && self.is_ident_tok(end - 1)
            && self.is_ident_tok(end - 2)
            && self.text(end - 2) == "as"
        {
            let ty = self.text(end - 1);
            if WIDE_TYPES.contains(&ty) {
                return Val::Wide(ty.to_string());
            }
            if ty == "f64" || ty == "f32" {
                return Val::Float;
            }
        }
        // Call shapes: parallel fan-out, handles, guards.
        let mut j = start;
        while j < end {
            if self.is_ident_tok(j) && self.is_punct(j + 1, "(") {
                match self.text(j) {
                    "map_chunks" => return Val::Parallel,
                    "spawn" => return Val::Handle,
                    "lock" => return Val::Guard(self.lock_identity(j, end)),
                    _ => {}
                }
            }
            j += 1;
        }
        // A chain rooted at a `Handle` binding whose tokens include a
        // no-arg `join()` produces joined thread results.
        if self.is_ident_tok(start) {
            if let Some(Val::Handle) = self.lookup(self.text(start)) {
                if self.chain_has_join(start, end) {
                    return Val::Parallel;
                }
            }
        }
        Val::Other
    }

    /// The identity of the lock acquired by the `lock` token at `at`:
    /// for a method call (`shared.queue.lock()`) the receiver's last
    /// field; for the free helper (`lock(&shared.queue)`) the last
    /// identifier inside the argument parens.
    fn lock_identity(&self, at: usize, end: usize) -> String {
        // Method form: ident `.` lock — the preceding identifier.
        if let Some(recv) = at
            .checked_sub(2)
            .filter(|&p| self.is_punct(p + 1, ".") && self.is_ident_tok(p))
        {
            return self.text(recv).to_string();
        }
        // Free form: last identifier inside the balanced paren group.
        let mut depth = 0i32;
        let mut j = at + 1;
        let mut last = None;
        while j < end {
            if self.is_punct(j, "(") {
                depth += 1;
            } else if self.is_punct(j, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if self.is_ident_tok(j) {
                last = Some(self.text(j).to_string());
            }
            j += 1;
        }
        last.unwrap_or_else(|| String::from("?"))
    }

    /// Whether the range contains a no-argument `.join()` call (thread
    /// join — string `join(", ")` takes an argument and never matches).
    fn chain_has_join(&self, start: usize, end: usize) -> bool {
        (start..end).any(|j| {
            self.is_ident_tok(j)
                && self.text(j) == "join"
                && self.is_punct(j + 1, "(")
                && self.is_punct(j + 2, ")")
        })
    }

    /// Walks a dotted receiver chain backwards from the `.` at `dot` and
    /// returns the index of its head identifier (`parts` in
    /// `parts.iter().copied()`), skipping balanced paren/turbofish
    /// groups. `None` when the receiver is not a simple chain.
    fn chain_head(&self, dot: usize) -> Option<usize> {
        let mut i = dot; // points at a `.`
        for _ in 0..16 {
            // Before the dot: a call close, a turbofish close, or an ident.
            let mut j = i.checked_sub(1)?;
            if self.is_punct(j, ")") {
                // Skip the balanced paren group.
                let mut depth = 1i32;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    if self.is_punct(j, ")") {
                        depth += 1;
                    } else if self.is_punct(j, "(") {
                        depth -= 1;
                    }
                }
                j = j.checked_sub(1)?;
                // Skip a `::<T>` turbofish between name and parens.
                if self.is_punct(j, ">") {
                    let mut depth = 1i32;
                    while depth > 0 {
                        j = j.checked_sub(1)?;
                        if self.is_punct(j, ">") {
                            depth += 1;
                        } else if self.is_punct(j, "<") {
                            depth -= 1;
                        }
                    }
                    j = j.checked_sub(1)?;
                    if !self.is_punct(j, "::") {
                        return None;
                    }
                    j = j.checked_sub(1)?;
                }
            }
            if !self.is_ident_tok(j) {
                return None;
            }
            // Head reached when no further `.` precedes.
            match j.checked_sub(1) {
                Some(p) if self.is_punct(p, ".") => i = p,
                _ => return Some(j),
            }
        }
        None
    }

    /// Whether the tokens after a method name carry a float turbofish
    /// (`::<f64>` / `::<f32>`).
    fn float_turbofish(&self, name_at: usize) -> bool {
        self.is_punct(name_at + 1, "::")
            && self.is_punct(name_at + 2, "<")
            && name_at + 3 < self.toks.len()
            && matches!(self.text(name_at + 3), "f64" | "f32")
    }

    /// The main walk over the body token range.
    fn walk(&mut self, start: usize, end: usize) {
        let mut depth = 1usize; // inside the body braces
        let mut i = start;
        while i < end {
            if self.is_punct(i, "{") {
                depth += 1;
                i += 1;
                continue;
            }
            if self.is_punct(i, "}") {
                depth = depth.saturating_sub(1);
                self.binds.retain(|b| b.depth <= depth);
                i += 1;
                continue;
            }
            // Skip attributes inside bodies.
            if self.is_punct(i, "#") && self.is_punct(i + 1, "[") {
                let mut d = 0i32;
                let mut j = i + 1;
                while j < end {
                    if self.is_punct(j, "[") {
                        d += 1;
                    } else if self.is_punct(j, "]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            if self.is_ident_tok(i) {
                if self.is_punct(i + 1, "(") {
                    self.call_site(i);
                }
                match self.text(i) {
                    "let" => {
                        i = self.let_stmt(i, end, depth);
                        continue;
                    }
                    "for" => {
                        if let Some(next) = self.for_loop(i, end, depth) {
                            i = next;
                            continue;
                        }
                    }
                    "drop" if self.is_punct(i + 1, "(") => {
                        if self.is_ident_tok(i + 2) && self.is_punct(i + 3, ")") {
                            let name = self.text(i + 2).to_string();
                            self.kill(&name);
                            i += 4;
                            continue;
                        }
                    }
                    "as" => {
                        self.cast_site(i);
                    }
                    "sum" | "fold" if i > 0 && self.is_punct(i - 1, ".") => {
                        self.reduction_site(i);
                    }
                    "lock" if self.is_punct(i + 1, "(") => {
                        // An acquisition outside a `let` (those are
                        // recorded in let_stmt): feed the D014 graph.
                        let lock = self.lock_identity(i, end);
                        let held = self.held_locks();
                        self.facts.acquires.push(LockAcq {
                            lock,
                            held,
                            line: self.toks[i].line,
                        });
                    }
                    name if IO_METHODS.contains(&name)
                        && i > 0
                        && self.is_punct(i - 1, ".")
                        && self.is_punct(i + 1, "(") =>
                    {
                        if let Some(g) = self.live_guard() {
                            self.facts.locks.push(Site {
                                what: format!("guard `{g}` held across {name}()"),
                                line: self.toks[i].line,
                            });
                        }
                    }
                    _ => {
                        // Reassignment: `name = expr ;` — reclassify.
                        if self.is_punct(i + 1, "=")
                            && !self.is_punct(i + 2, "=")
                            && !(i > 0
                                && self.toks[i - 1].kind == TokenKind::Punct
                                && matches!(
                                    self.text(i - 1),
                                    "=" | "==" | "!" | "<" | ">" | "+" | "-" | "*" | "/"
                                ))
                            && self.lookup(self.text(i)).is_some()
                        {
                            let name = self.text(i).to_string();
                            let stmt_end = self.stmt_end(i + 2, end);
                            // `g = cv.wait(g)` keeps the guard live.
                            let keeps_guard = matches!(self.lookup(&name), Some(Val::Guard(_)))
                                && (i + 2..stmt_end).any(|j| {
                                    self.is_ident_tok(j)
                                        && self.text(j) == "wait"
                                        && self.is_punct(j + 1, "(")
                                });
                            if !keeps_guard {
                                let val = self.classify_init(i + 2, stmt_end);
                                self.kill(&name);
                                self.bind(&name, val, depth);
                            }
                            self.scan_expr(i + 2, stmt_end, depth);
                            i = stmt_end;
                            continue;
                        }
                        // `+=` accumulation into a float from a joined /
                        // parallel element.
                        if self.is_punct(i + 1, "+")
                            && self.is_punct(i + 2, "=")
                            && self.toks[i + 1].end == self.toks[i + 2].start
                            && self.lookup(self.text(i)) == Some(&Val::Float)
                        {
                            let stmt_end = self.stmt_end(i + 3, end);
                            let from_parallel = (i + 3..stmt_end).any(|j| {
                                self.is_ident_tok(j)
                                    && matches!(
                                        self.lookup(self.text(j)),
                                        Some(Val::ParallelElem) | Some(Val::Parallel)
                                    )
                            }) || self.chain_has_join(i + 3, stmt_end);
                            if from_parallel {
                                self.facts.reductions.push(Site {
                                    what: format!(
                                        "float accumulation into `{}` over joined thread results",
                                        self.text(i)
                                    ),
                                    line: self.toks[i].line,
                                });
                            }
                            self.scan_expr(i + 3, stmt_end, depth);
                            i = stmt_end;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
    }

    /// Scans an expression range for nested cast/reduction/lock sites
    /// (used for initializers and RHS ranges consumed whole).
    fn scan_expr(&mut self, start: usize, end: usize, _depth: usize) {
        let mut i = start;
        while i < end {
            if self.is_ident_tok(i) {
                if self.is_punct(i + 1, "(") {
                    self.call_site(i);
                }
                match self.text(i) {
                    "as" => self.cast_site(i),
                    "sum" | "fold" if i > 0 && self.is_punct(i - 1, ".") => self.reduction_site(i),
                    name if IO_METHODS.contains(&name)
                        && i > 0
                        && self.is_punct(i - 1, ".")
                        && self.is_punct(i + 1, "(") =>
                    {
                        if let Some(g) = self.live_guard() {
                            self.facts.locks.push(Site {
                                what: format!("guard `{g}` held across {name}()"),
                                line: self.toks[i].line,
                            });
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }

    /// Records D014 facts for the call whose name token is at `i` (next
    /// token is `(`): a direct blocking-I/O site, and — when a guard is
    /// live — a guarded call for the interprocedural blocking check.
    fn call_site(&mut self, i: usize) {
        let name = self.text(i).to_string();
        let name = name.as_str();
        if matches!(
            name,
            "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "move" | "else" | "in"
        ) {
            return;
        }
        let line = self.toks[i].line;
        let prev_dot = i.checked_sub(1).is_some_and(|p| self.is_punct(p, "."));
        let prev_path = i.checked_sub(1).is_some_and(|p| self.is_punct(p, "::"));
        if prev_dot && BLOCKING_METHODS.contains(&name) {
            self.facts.blocking.push(Site {
                what: format!("{name}()"),
                line,
            });
        }
        if GUARD_MACHINERY.contains(&name) {
            return;
        }
        let held = self.held_locks();
        if held.is_empty() {
            return;
        }
        let name = name.to_string();
        let kind = if prev_dot {
            let on_self = i
                .checked_sub(2)
                .is_some_and(|p| self.is_ident_tok(p) && self.text(p) == "self");
            crate::parser::CallKind::Method { on_self }
        } else if prev_path {
            let head = i
                .checked_sub(2)
                .filter(|&p| self.is_ident_tok(p))
                .map(|p| self.text(p).to_string())
                .unwrap_or_default();
            crate::parser::CallKind::Qualified { head }
        } else {
            crate::parser::CallKind::Free
        };
        self.facts.guarded_calls.push(GuardedCall {
            callee: name,
            kind,
            held,
            line,
        });
    }

    /// Handles a `let` statement at `i`; returns the resume index.
    fn let_stmt(&mut self, i: usize, end: usize, depth: usize) -> usize {
        let mut j = i + 1;
        if self.is_ident_tok(j) && self.text(j) == "mut" {
            j += 1;
        }
        // Only simple `let name [: Ty] = init ;` shapes are tracked;
        // patterns (`let Some(x)`, `let (a, b)`, `let [a, b]`) are not.
        if !self.is_ident_tok(j) || !(self.is_punct(j + 1, ":") || self.is_punct(j + 1, "=")) {
            return i + 1;
        }
        let name = self.text(j).to_string();
        let stmt_end = self.stmt_end(j, end);
        let mut ann: Vec<String> = Vec::new();
        let mut k = j + 1;
        if self.is_punct(k, ":") {
            k += 1;
            let mut angle = 0i32;
            while k < stmt_end {
                if self.is_punct(k, "<") {
                    angle += 1;
                } else if self.is_punct(k, ">") {
                    angle -= 1;
                } else if angle == 0 && self.is_punct(k, "=") {
                    break;
                }
                ann.push(self.text(k).to_string());
                k += 1;
            }
        }
        let init_start = if self.is_punct(k, "=") {
            k + 1
        } else {
            stmt_end
        };
        // A lock taken *as* a new guard binding is an acquisition site
        // for the D014 lock graph, with the current held-set.
        let init_val = self.classify_init(init_start, stmt_end);
        if let Val::Guard(lock) = &init_val {
            self.facts.acquires.push(LockAcq {
                lock: lock.clone(),
                held: self.held_locks(),
                line: self.toks[i].line,
            });
        }
        // Annotation beats initializer shape for scalar types; the
        // initializer wins for call shapes (Parallel/Handle/Guard).
        let ann_refs: Vec<&str> = ann.iter().map(String::as_str).collect();
        let val = match Self::classify_type(&ann_refs) {
            Val::Other => init_val,
            ann_val => match init_val {
                Val::Parallel | Val::Handle | Val::Guard(_) | Val::Const(_) => init_val,
                _ => ann_val,
            },
        };
        self.scan_expr(init_start, stmt_end, depth);
        self.bind(&name, val, depth);
        stmt_end
    }

    /// Handles `for x in <chain> {`: binds the loop variable when the
    /// chain is rooted at a Parallel/Handle value. Returns the resume
    /// index (just past `in`'s chain head detection — the body tokens are
    /// walked normally).
    fn for_loop(&mut self, i: usize, end: usize, depth: usize) -> Option<usize> {
        // `for [&] [mut] name in …`
        let mut j = i + 1;
        while self.is_punct(j, "&") || (self.is_ident_tok(j) && self.text(j) == "mut") {
            j += 1;
        }
        if !self.is_ident_tok(j) {
            return None;
        }
        let var = self.text(j).to_string();
        if !(self.is_ident_tok(j + 1) && self.text(j + 1) == "in") {
            return None;
        }
        // The iterated chain's head identifier.
        let head = j + 2;
        let mut h = head;
        while self.is_punct(h, "&") || (self.is_ident_tok(h) && self.text(h) == "mut") {
            h += 1;
        }
        if self.is_ident_tok(h) {
            if let Some(Val::Parallel | Val::Handle) = self.lookup(self.text(h)) {
                // The loop variable lives in the loop body block.
                self.bind(&var, Val::ParallelElem, depth + 1);
            }
        }
        let _ = end;
        Some(j + 2)
    }

    /// Records a D010 site for the `as` keyword at `i` when the operand
    /// is a tracked wide binding and the target type truncates it.
    fn cast_site(&mut self, i: usize) {
        // Operand: the single identifier immediately before `as` (calls,
        // closes and literals are expressions the pass does not judge).
        let Some(op_at) = i.checked_sub(1) else {
            return;
        };
        if !self.is_ident_tok(op_at) {
            return;
        }
        // `self.field as T` and `x.y as T` are untracked field reads.
        if op_at > 0 && self.is_punct(op_at - 1, ".") {
            return;
        }
        let operand = self.text(op_at).to_string();
        // Target type: the identifier after `as`.
        if !self.is_ident_tok(i + 1) {
            return;
        }
        let target = self.text(i + 1);
        let src_ty = match self.lookup(&operand) {
            Some(Val::Wide(ty)) => ty.clone(),
            Some(Val::Const(v)) => {
                // Const propagation: a value that provably fits is safe.
                if let Some(&(_, bits, signed)) = NARROW_TARGETS
                    .iter()
                    .chain(NARROW_FROM_128.iter())
                    .find(|(n, _, _)| *n == target)
                {
                    if const_fits(*v, bits, signed) {
                        return;
                    }
                    self.facts.casts.push(Site {
                        what: format!(
                            "constant {v} does not fit `{target}` (`{operand} as {target}`)"
                        ),
                        line: self.toks[i].line,
                    });
                }
                return;
            }
            _ => return,
        };
        let truncates = NARROW_TARGETS.iter().any(|(n, _, _)| *n == target)
            || (wide_bits(&src_ty) == 128 && NARROW_FROM_128.iter().any(|(n, _, _)| *n == target));
        if truncates {
            self.facts.casts.push(Site {
                what: format!("`{operand}` ({src_ty}) truncated by `as {target}`"),
                line: self.toks[i].line,
            });
        }
    }

    /// Records a D009 site for the `.sum`/`.fold` method name at `i` when
    /// the receiver chain is rooted at a parallel value and the reduction
    /// is float-typed.
    fn reduction_site(&mut self, i: usize) {
        let name = self.text(i).to_string();
        let Some(head) = self.chain_head(i - 1) else {
            return;
        };
        let head_name = self.text(head).to_string();
        let parallel = match self.lookup(&head_name) {
            Some(Val::Parallel) => true,
            Some(Val::Handle) => self.chain_has_join(head, i),
            _ => false,
        };
        if !parallel {
            return;
        }
        // Float evidence: a `::<f64>` turbofish on `sum`, or a `fold`
        // seeded with a float literal.
        let is_float = if name == "sum" {
            self.float_turbofish(i)
        } else {
            // fold(0.0, …)
            self.is_punct(i + 1, "(")
                && i + 2 < self.toks.len()
                && self.toks[i + 2].kind == TokenKind::Num
                && float_literal(self.text(i + 2))
        };
        if is_float {
            self.facts.reductions.push(Site {
                what: format!("f64 {name}() over `{head_name}` (parallel fan-out output)"),
                line: self.toks[i].line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Lexes `src` (one fn), finds the signature/body split, runs the
    /// pass.
    fn facts(src: &str) -> BodyFacts {
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    crate::lexer::TokenKind::LineComment | crate::lexer::TokenKind::BlockComment
                )
            })
            .collect();
        let fn_at = toks
            .iter()
            .position(|t| t.text(src) == "fn")
            .expect("fn keyword");
        let open = toks
            .iter()
            .enumerate()
            .position(|(i, t)| i > fn_at && t.kind == TokenKind::Punct && t.text(src) == "{")
            .expect("body open");
        analyze(src, &toks, (fn_at, open), (open + 1, toks.len() - 1))
    }

    // --- D009 ------------------------------------------------------------

    #[test]
    fn sum_over_map_chunks_output_is_a_reduction() {
        let f = facts(
            "fn f(par: Parallelism, n: usize) -> f64 {\n\
                 let parts = map_chunks(par, n, |r| r.len() as f64);\n\
                 parts.iter().sum::<f64>()\n\
             }\n",
        );
        assert_eq!(f.reductions.len(), 1, "{f:?}");
        assert_eq!(f.reductions[0].line, 3);
    }

    #[test]
    fn join_accumulation_into_float_is_a_reduction() {
        let f = facts(
            "fn f(handles: Vec<JoinHandle<f64>>) -> f64 {\n\
                 let mut total = 0.0f64;\n\
                 for h in handles {\n\
                     total += h.join().unwrap_or(0.0);\n\
                 }\n\
                 total\n\
             }\n",
        );
        assert_eq!(f.reductions.len(), 1, "{f:?}");
    }

    #[test]
    fn ordinary_slice_sum_is_not_a_reduction() {
        let f = facts(
            "fn f(intervals: &[f64]) -> f64 {\n\
                 intervals.iter().sum::<f64>() / intervals.len() as f64\n\
             }\n",
        );
        assert!(f.reductions.is_empty(), "{f:?}");
    }

    #[test]
    fn integer_sum_over_parallel_output_is_not_flagged() {
        let f = facts(
            "fn f(par: Parallelism, n: usize) -> u64 {\n\
                 let parts = map_chunks(par, n, |r| r.len() as u64);\n\
                 parts.iter().sum::<u64>()\n\
             }\n",
        );
        assert!(f.reductions.is_empty(), "{f:?}");
    }

    // --- D010 ------------------------------------------------------------

    #[test]
    fn wide_binding_narrow_cast_is_flagged() {
        let f = facts(
            "fn f(raw: u64) -> u16 {\n\
                 raw as u16\n\
             }\n",
        );
        assert_eq!(f.casts.len(), 1, "{f:?}");
        assert!(f.casts[0].what.contains("u64"));
    }

    #[test]
    fn annotated_let_and_chain_copy_are_tracked() {
        let f = facts(
            "fn f(seed: u64) -> u32 {\n\
                 let raw: u64 = seed;\n\
                 let id = raw;\n\
                 id as u32\n\
             }\n",
        );
        assert_eq!(f.casts.len(), 1, "{f:?}");
    }

    #[test]
    fn const_that_fits_is_not_flagged() {
        let f = facts(
            "fn f() -> u8 {\n\
                 let cap = 255;\n\
                 cap as u8\n\
             }\n",
        );
        assert!(f.casts.is_empty(), "{f:?}");
    }

    #[test]
    fn const_that_overflows_is_flagged() {
        let f = facts(
            "fn f() -> u8 {\n\
                 let cap = 256;\n\
                 cap as u8\n\
             }\n",
        );
        assert_eq!(f.casts.len(), 1, "{f:?}");
    }

    #[test]
    fn const_fold_through_arithmetic() {
        let f = facts(
            "fn f() -> (u16, u16) {\n\
                 let base = 60;\n\
                 let fits = base * 1000;\n\
                 let over = base * 2000;\n\
                 (fits as u16, over as u16)\n\
             }\n",
        );
        // 60_000 fits u16; 120_000 does not.
        assert_eq!(f.casts.len(), 1, "{f:?}");
        assert!(f.casts[0].what.contains("120000"), "{f:?}");
    }

    #[test]
    fn widening_and_expression_casts_are_not_judged() {
        let f = facts(
            "fn f(raw: u64, v: &[u8]) -> u64 {\n\
                 let a = raw as u128;\n\
                 let b = v.len() as u32;\n\
                 a as u64 + b as u64\n\
             }\n",
        );
        // `raw as u128` widens; `v.len() as u32` is an expression (not a
        // tracked binding); `a as u64` truncates a 128-bit source.
        assert_eq!(f.casts.len(), 1, "{f:?}");
        assert!(f.casts[0].what.contains("u128"), "{f:?}");
    }

    // --- D011 ------------------------------------------------------------

    #[test]
    fn guard_across_write_is_flagged() {
        let f = facts(
            "fn f(stream: &mut TcpStream, queue: &Mutex<VecDeque<Vec<u8>>>) {\n\
                 let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());\n\
                 while let Some(frame) = q.pop_front() {\n\
                     let _ = stream.write_all(&frame);\n\
                 }\n\
             }\n",
        );
        assert_eq!(f.locks.len(), 1, "{f:?}");
        assert!(f.locks[0].what.contains("write_all"));
    }

    #[test]
    fn second_lock_while_guard_live_records_acquisition_order() {
        // Nested acquisition is no longer an intra-function D011: the
        // acquires facts carry the held-set and D014's lock-order graph
        // decides whether the order is actually cyclic.
        let f = facts(
            "fn f(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {\n\
                 let ga = a.lock().unwrap_or_else(|p| p.into_inner());\n\
                 let gb = b.lock().unwrap_or_else(|p| p.into_inner());\n\
                 *ga + *gb\n\
             }\n",
        );
        assert!(f.locks.is_empty(), "{f:?}");
        assert_eq!(f.acquires.len(), 2, "{f:?}");
        assert_eq!(f.acquires[0].lock, "a");
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].lock, "b");
        assert_eq!(f.acquires[1].held, vec!["a".to_string()]);
    }

    #[test]
    fn drop_before_io_is_clean() {
        let f = facts(
            "fn f(stream: &mut TcpStream, queue: &Mutex<VecDeque<Vec<u8>>>) {\n\
                 let q = queue.lock().unwrap_or_else(|p| p.into_inner());\n\
                 let n = q.len();\n\
                 drop(q);\n\
                 let _ = stream.write_all(&[n as u8]);\n\
             }\n",
        );
        assert!(f.locks.is_empty(), "{f:?}");
    }

    #[test]
    fn condvar_wait_keeps_guard_without_violation() {
        let f = facts(
            "fn f(shared: &Shared) {\n\
                 let mut q = lock(&shared.queue);\n\
                 loop {\n\
                     if q.is_empty() {\n\
                         q = shared.available.wait(q).unwrap_or_else(|p| p.into_inner());\n\
                     }\n\
                 }\n\
             }\n",
        );
        assert!(f.locks.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let f = facts(
            "fn f(stream: &mut TcpStream, queue: &Mutex<u64>) {\n\
                 {\n\
                     let g = queue.lock().unwrap_or_else(|p| p.into_inner());\n\
                     let _ = *g;\n\
                 }\n\
                 let _ = stream.flush();\n\
             }\n",
        );
        assert!(f.locks.is_empty(), "{f:?}");
    }
}
