//! `cfa-audit` — scan the workspace for determinism violations.
//!
//! Usage:
//!
//! ```text
//! cargo run -p cfa-audit                        # scan the workspace, text report
//! cargo run -p cfa-audit -- <path>              # scan another tree (e.g. a fixture)
//! cargo run -p cfa-audit -- --format sarif      # SARIF 2.1.0 to stdout
//! cargo run -p cfa-audit -- --format json       # native JSON report
//! cargo run -p cfa-audit -- --update-baseline   # rewrite crates/audit/baseline.txt
//! cargo run -p cfa-audit -- --no-baseline       # strict: ignore the baseline
//! cargo run -p cfa-audit -- --rules             # print the rule table
//! cargo run -p cfa-audit -- <path> --fix        # apply mechanical fixes in place
//! cargo run -p cfa-audit -- --threads 4         # scan on 4 worker threads
//! ```
//!
//! `--threads` only changes wall time: the report is byte-identical for
//! every thread count (default: all cores).
//!
//! `--fix` rewrites the mechanical rules (D003 float equality →
//! `to_bits()`, D005 bare allow → justification template, D010
//! truncating cast → checked `try_from`) for *non-baselined* findings
//! and is idempotent: a second run applies nothing.
//!
//! Findings are checked against the committed baseline
//! (`crates/audit/baseline.txt` under the scanned root, or `--baseline
//! <path>`): grandfathered findings are reported at note level, anything
//! new fails the run. Exits non-zero iff at least one non-baselined
//! finding survives its allow annotations, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use cfa_audit::{
    apply_fixes, scan_tree_with_stats_at, to_json, to_sarif, Baseline, Rule, BASELINE_REL_PATH,
};

fn workspace_root() -> PathBuf {
    // crates/audit/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfa-audit [<root>] [--format text|json|sarif] [--baseline <path>] \
         [--no-baseline] [--update-baseline] [--rules] [--fix] [--threads N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut update_baseline = false;
    let mut fix = false;
    let mut threads: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                for rule in Rule::ALL {
                    println!("{rule}  {}", rule.summary());
                    println!("      fix: {}", rule.hint());
                }
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage(),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            "--fix" => fix = true,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = Some(n),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return usage();
                }
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    // Reports are byte-identical for every thread count (the
    // `map_chunks` contract), so defaulting to all cores is safe.
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });

    // audit: allow(D002, reason = "measures the scan's own wall time for the stderr footer; never feeds scoring or simulation")
    let scan_started = std::time::Instant::now();
    let (findings, stats) = match scan_tree_with_stats_at(&root, threads) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cfa-audit: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    // Stderr, so the stdout report stays byte-identical across runs.
    eprintln!(
        "cfa-audit: scanned {} files / {} lines / {} functions in {:.0} ms",
        stats.files,
        stats.lines,
        stats.functions,
        scan_started.elapsed().as_secs_f64() * 1000.0
    );

    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_REL_PATH));
    if update_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("cfa-audit: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "cfa-audit: baseline updated — {} finding{} grandfathered at {}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Baseline::default()
    } else {
        Baseline::load(&baseline_path)
    };
    let baselined = baseline.classify(&findings);
    let new = baselined.iter().filter(|&&b| !b).count();

    if fix {
        // Fix only non-baselined findings: grandfathered sites burn down
        // through deliberate review, not bulk rewrites.
        let fixable: Vec<_> = findings
            .iter()
            .zip(&baselined)
            .filter(|&(_, &is_base)| !is_base)
            .map(|(f, _)| f.clone())
            .collect();
        match apply_fixes(&root, &fixable) {
            Ok(outcome) => {
                println!(
                    "cfa-audit: applied {} fix{} across {} file{}",
                    outcome.applied,
                    if outcome.applied == 1 { "" } else { "es" },
                    outcome.files,
                    if outcome.files == 1 { "" } else { "s" },
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("cfa-audit: --fix failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match format {
        Format::Json => print!("{}", to_json(&findings, &baselined)),
        Format::Sarif => print!("{}", to_sarif(&findings, &baselined)),
        Format::Text => {
            if findings.is_empty() {
                println!("cfa-audit: clean ({} rules, no findings)", Rule::ALL.len());
            } else {
                for (f, &is_base) in findings.iter().zip(&baselined) {
                    if is_base {
                        println!("{f} [baselined]");
                    } else {
                        println!("{f}");
                        println!("    fix: {}", f.rule.hint());
                    }
                }
                println!(
                    "cfa-audit: {} finding{} ({} new, {} baselined) — see `cargo run -p cfa-audit -- --rules`",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    new,
                    findings.len() - new,
                );
            }
        }
    }

    if new == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
