//! `cfa-audit` — scan the workspace for determinism violations.
//!
//! Usage:
//!
//! ```text
//! cargo run -p cfa-audit            # scan the workspace checkout
//! cargo run -p cfa-audit -- <path>  # scan another tree (e.g. a fixture)
//! cargo run -p cfa-audit -- --rules # print the rule table
//! ```
//!
//! Exits non-zero if any finding survives its allow annotations, so CI can
//! gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use cfa_audit::{scan_tree, Rule};

fn workspace_root() -> PathBuf {
    // crates/audit/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(flag) if flag == "--rules" => {
            for rule in Rule::ALL {
                println!("{rule}  {}", rule.summary());
                println!("      fix: {}", rule.hint());
            }
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => workspace_root(),
    };

    let findings = match scan_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cfa-audit: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if findings.is_empty() {
        println!("cfa-audit: clean ({} rules, no findings)", Rule::ALL.len());
        return ExitCode::SUCCESS;
    }

    for f in &findings {
        println!("{f}");
        println!("    fix: {}", f.rule.hint());
    }
    println!(
        "cfa-audit: {} finding{} — see `cargo run -p cfa-audit -- --rules`",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
