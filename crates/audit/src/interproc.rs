//! The interprocedural rules D006–D008, evaluated over the workspace
//! [`crate::graph::CallGraph`].
//!
//! * **D006 — panic reachability.** No `panic!`-family macro, `unwrap`/
//!   `expect`, or slice/array indexing may be transitively reachable from
//!   the simulator's per-event dispatch (`Simulator::run` /
//!   `Simulator::run_until`) or from the zero-alloc prediction entry
//!   point (`predict_row`). A panic on either path aborts a training or
//!   calibration run mid-stream — the silent corruption the paper's
//!   threshold selection cannot tolerate.
//! * **D007 — unbounded growth.** A type whose event-path methods grow a
//!   `self` field (`insert`/`push`/…) must evict from that same field
//!   somewhere in the type (`remove`/`retain`/`truncate`/…), mirroring
//!   the FloodAgent 60 s / 4096-entry bound; otherwise per-event state
//!   grows without limit over a long run.
//! * **D008 — allocation in the hot predict path.** `Vec::new`,
//!   `to_vec`, `clone`, `format!`, `collect`, … must not be reachable
//!   from the per-row scoring path (`predict_row`, `class_probs_into`,
//!   `score_all`, `score_snapshot`, …): that path is advertised
//!   zero-alloc and the ensemble calls it `L` times per event.
//!
//! The dataflow rules D009–D011 are emitted here too: the
//! [`crate::dataflow`] pass mines the per-function facts (float
//! reductions over parallel results, truncating casts on tracked wide
//! values, lock-discipline violations) and this layer applies the
//! interprocedural gates — D010 fires only in functions reachable from
//! the panic/predict hot roots, D011 only in the serving crate.
//!
//! Suppression: `// audit: allow(D006, reason = "...")` at the site (or
//! the line above). For panic sites, an existing `allow(D004, ...)`
//! justification also suppresses D006 — both rules police the same
//! contract and one written reason is enough. For D009, the allow's
//! `reason` doubles as the *documented canonical combine order* the rule
//! demands.

use crate::graph::CallGraph;
use crate::{Finding, Rule};
use std::collections::BTreeMap;

/// Qualified roots of the event-dispatch path.
pub const EVENT_ROOTS: [&str; 2] = ["Simulator::run", "Simulator::run_until"];

/// Bare-name roots of the zero-alloc predict/score path.
/// `score_rows_into` is the serving hot loop in `cfa-serve` — a network
/// request must not allocate per row any more than a simulation event.
/// The compiled engine's entry points (`CompiledEnsemble`'s row and
/// structure-of-arrays batch scorers, and the detector's batch router)
/// are held to the same per-row zero-allocation contract as the
/// interpreted walk; they are qualified so the client-side convenience
/// `Client::score_batch` (which builds a wire frame per request) stays
/// out of the hot-path net.
pub const PREDICT_ROOTS: [&str; 13] = [
    "predict_row",
    "prob_of_row",
    "class_probs_into",
    "score_all",
    "score_indices",
    "one_model_score",
    "score_snapshot",
    "score_rows_into",
    "CompiledEnsemble::score_row",
    "CompiledEnsemble::score_batch",
    "score_rows_with",
    // The spatial grid's neighbor query runs once per transmitted frame —
    // the kernel's hottest loop — and must reuse caller scratch, never
    // allocate per query.
    "SpatialGrid::candidates_into",
    // Alarm fan-out runs on the reactor thread for every alarm × every
    // subscriber; it must reuse its frame scratch and never allocate (or
    // block) per event, or a popular model stalls the whole event loop.
    "fanout_alarms",
];

/// Per-file context the interprocedural pass needs back from the lexical
/// pass: the raw source lines (for snippets) and a suppression check.
pub struct FileCtx {
    /// Raw source lines of the file.
    pub lines: Vec<String>,
    /// `(rule, line)` pairs (0-based lines) with a justified allow.
    pub allowed: Vec<(Rule, usize)>,
}

impl FileCtx {
    pub(crate) fn is_allowed(&self, rule: Rule, line0: usize) -> bool {
        self.allowed.iter().any(|&(r, l)| r == rule && l == line0)
    }

    pub(crate) fn snippet(&self, line1: usize) -> String {
        self.lines
            .get(line1.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Renders a call chain for a finding note, eliding the middle of long
/// chains so messages stay readable.
pub(crate) fn render_chain(chain: &[String]) -> String {
    if chain.len() <= 6 {
        chain.join(" → ")
    } else {
        let head = chain[..3].join(" → ");
        let tail = chain[chain.len() - 2..].join(" → ");
        format!("{head} → … → {tail}")
    }
}

/// Runs D006–D008 over the graph. `files` maps workspace-relative paths
/// to their lexical context.
pub fn check(graph: &CallGraph, files: &BTreeMap<String, FileCtx>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // --- D006: panic reachability --------------------------------------
    // `handle_conn` is cfa-serve's per-connection request handler: a
    // malformed network frame must never panic a worker, so the whole
    // request-handling path is held to the same standard as the
    // simulator's event path.
    // `score_row`/`score_batch` are the compiled engine's scoring entry
    // points: a malformed row must fail loudly at the asserted width
    // check, never via an unjustified panic site deeper in the walk.
    // `run_fleet` is the corpus-production entry point: it drives whole
    // batches of simulations across worker threads, so any panic it can
    // reach takes the entire fleet down with it.
    // `Reactor::run` is cfa-serve's single event loop: every connection
    // lives in its poll table, so one panic drops the whole fleet of
    // clients at once — nothing reachable from it may panic on network
    // input. `score_job` is the worker-side scoring entry the reactor
    // dispatches to; it is held to the same standard.
    let panic_roots: Vec<&str> = EVENT_ROOTS
        .iter()
        .copied()
        .chain([
            "predict_row",
            "handle_conn",
            "CompiledEnsemble::score_row",
            "CompiledEnsemble::score_batch",
            "run_fleet",
            "Reactor::run",
            "score_job",
        ])
        .collect();
    let parent = graph.reachable(&graph.roots(&panic_roots));
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || parent[i].is_none() {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        let chain = render_chain(&graph.chain(&parent, i));
        for site in &f.panics {
            let line0 = site.line - 1;
            // A justified D004 (hot-path panic contract) allow covers the
            // same site for D006.
            if ctx.is_allowed(Rule::D006, line0) || ctx.is_allowed(Rule::D004, line0) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D006,
                file: f.file.clone(),
                line: site.line,
                snippet: ctx.snippet(site.line),
                note: Some(format!("{} reachable via {chain}", site.what)),
                severity: Rule::D006.severity(),
            });
        }
    }

    // --- D007: unbounded growth on the event path ----------------------
    let event_parent = graph.reachable(&graph.roots(&EVENT_ROOTS));
    // Eviction index: (owner type, field) pairs evicted anywhere.
    let mut evicted: Vec<(&str, &str)> = Vec::new();
    for f in &graph.fns {
        if let Some(owner) = &f.owner {
            for e in &f.evicts {
                evicted.push((owner.as_str(), e.field.as_str()));
            }
        }
    }
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || event_parent[i].is_none() {
            continue;
        }
        let Some(owner) = &f.owner else { continue };
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        let chain = render_chain(&graph.chain(&event_parent, i));
        for g in &f.grows {
            if evicted
                .iter()
                .any(|&(o, fd)| o == owner.as_str() && fd == g.field)
            {
                continue;
            }
            let line0 = g.line - 1;
            if ctx.is_allowed(Rule::D007, line0) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D007,
                file: f.file.clone(),
                line: g.line,
                snippet: ctx.snippet(g.line),
                note: Some(format!(
                    "{owner}.{field} grows via {method}() on the event path ({chain}) but no method of {owner} ever evicts from it",
                    field = g.field,
                    method = g.method,
                )),
                severity: Rule::D007.severity(),
            });
        }
    }

    // --- D009: non-canonical float reduction ---------------------------
    // Purely intraprocedural facts, applied to all non-test code: float
    // addition is non-associative, so the combine order of per-chunk /
    // per-thread partial results is part of the bit-determinism contract.
    // A justified allow is the documentation the rule demands.
    for f in &graph.fns {
        if f.is_test {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        for site in &f.flow.reductions {
            if ctx.is_allowed(Rule::D009, site.line - 1) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D009,
                file: f.file.clone(),
                line: site.line,
                snippet: ctx.snippet(site.line),
                note: Some(format!(
                    "{} — float addition is non-associative; the combine order must be documented as thread-count invariant",
                    site.what
                )),
                severity: Rule::D009.severity(),
            });
        }
    }

    // --- D010: truncating casts on hot paths ---------------------------
    // A silently-truncating `as` on an id/index/time wide value corrupts
    // data instead of failing; on the panic-policed and predict paths the
    // contract is "fail loudly or prove the range". The gate is the union
    // of the D006 panic roots and the D008 predict roots.
    let hot_roots: Vec<&str> = panic_roots
        .iter()
        .copied()
        .chain(PREDICT_ROOTS.iter().copied())
        .collect();
    let hot_parent = graph.reachable(&graph.roots(&hot_roots));
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || hot_parent[i].is_none() {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        let chain = render_chain(&graph.chain(&hot_parent, i));
        for site in &f.flow.casts {
            if ctx.is_allowed(Rule::D010, site.line - 1) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D010,
                file: f.file.clone(),
                line: site.line,
                snippet: ctx.snippet(site.line),
                note: Some(format!("{}, reachable via {chain}", site.what)),
                severity: Rule::D010.severity(),
            });
        }
    }

    // --- D011: lock discipline in the serving crate --------------------
    // The connection loop shares one process with the scoring workers: a
    // guard held across socket I/O stalls every thread behind the mutex
    // for a network round-trip, and nested acquisition orders are how the
    // accept/worker pair deadlocks. Scoped to crates/serve — the only
    // crate with locks by design.
    for f in &graph.fns {
        if f.is_test || !f.file.starts_with("crates/serve/") {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        for site in &f.flow.locks {
            if ctx.is_allowed(Rule::D011, site.line - 1) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D011,
                file: f.file.clone(),
                line: site.line,
                snippet: ctx.snippet(site.line),
                note: Some(format!("{} in {}", site.what, f.qualified())),
                severity: Rule::D011.severity(),
            });
        }
    }

    // --- D008: allocation in the predict path --------------------------
    let predict_parent = graph.reachable(&graph.roots(&PREDICT_ROOTS));
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || predict_parent[i].is_none() {
            continue;
        }
        let Some(ctx) = files.get(&f.file) else {
            continue;
        };
        let chain = render_chain(&graph.chain(&predict_parent, i));
        for site in &f.allocs {
            let line0 = site.line - 1;
            if ctx.is_allowed(Rule::D008, line0) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::D008,
                file: f.file.clone(),
                line: site.line,
                snippet: ctx.snippet(site.line),
                note: Some(format!(
                    "{} allocates on the zero-alloc predict path, reachable via {chain}",
                    site.what
                )),
                severity: Rule::D008.severity(),
            });
        }
    }

    findings
}
