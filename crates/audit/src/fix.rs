//! The `--fix` autofix engine: byte-span patches for the *mechanical*
//! rules, applied in place.
//!
//! | Rule | Rewrite |
//! |------|---------|
//! | D003 | `a == b` on floats → `(a).to_bits() == (b).to_bits()` — exact bit identity, no behavior change for the non-NaN values the workspace compares |
//! | D005 | bare `#[allow(...)]` → same-line justification template for a human to fill in |
//! | D010 | `x as u32` on a tracked wide value → `u32::try_from(x).expect(..)` plus a justified `allow(D004)` (which also covers D006) — silent truncation becomes a loud failure |
//!
//! Only *simple* operand shapes are rewritten — a plain identifier, a
//! dotted field chain, or a literal — so a patch never duplicates a
//! side-effecting expression. Everything else is left for a human.
//!
//! The engine is **idempotent and re-scan-clean by construction**: every
//! rewrite removes the pattern its rule matches (and suppresses any rule
//! the rewrite would newly trip, e.g. the `expect` a D010 fix
//! introduces), so a second `--fix` run finds nothing to do and a
//! re-scan reports none of the mechanical rules.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};
use crate::{Finding, Rule};

/// One byte-span replacement inside a file.
struct Patch {
    /// Byte offset of the first replaced byte.
    start: usize,
    /// Byte offset one past the last replaced byte.
    end: usize,
    /// Replacement text.
    replacement: String,
}

/// What `apply_fixes` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixOutcome {
    /// Number of individual patches applied.
    pub applied: usize,
    /// Number of files rewritten.
    pub files: usize,
}

/// Applies the mechanical fixes for `findings` to the tree rooted at
/// `root` (the same root the findings were scanned from, so the
/// workspace-relative `Finding::file` paths resolve). Returns how many
/// patches landed; findings whose shape is not mechanically fixable are
/// skipped.
pub fn apply_fixes(root: &Path, findings: &[Finding]) -> std::io::Result<FixOutcome> {
    let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        if matches!(f.rule, Rule::D003 | Rule::D005 | Rule::D010) {
            by_file.entry(f.file.as_str()).or_default().push(f);
        }
    }
    let mut outcome = FixOutcome::default();
    for (file, file_findings) in by_file {
        let path = root.join(file);
        let src = std::fs::read_to_string(&path)?;
        let toks: Vec<Token> = lex(&src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let mut patches: Vec<Patch> = Vec::new();
        for f in &file_findings {
            match f.rule {
                Rule::D003 => fix_d003(&src, &toks, f.line, &mut patches),
                Rule::D005 => fix_d005(&src, f.line, &mut patches),
                Rule::D010 => fix_d010(&src, &toks, f, &mut patches),
                _ => {}
            }
        }
        if patches.is_empty() {
            continue;
        }
        // Apply back-to-front so earlier offsets stay valid; drop any
        // patch overlapping one already applied.
        patches.sort_by(|a, b| b.start.cmp(&a.start).then(b.end.cmp(&a.end)));
        let mut out = src.clone();
        let mut low = usize::MAX;
        let mut applied_here = 0usize;
        for p in patches {
            if p.end > low {
                continue;
            }
            out.replace_range(p.start..p.end, &p.replacement);
            low = p.start;
            applied_here += 1;
        }
        if applied_here > 0 {
            std::fs::write(&path, out)?;
            outcome.applied += applied_here;
            outcome.files += 1;
        }
    }
    Ok(outcome)
}

/// Byte offset one past the last content byte of 1-based `line` (i.e.
/// where a trailing comment would be inserted).
fn line_end_offset(src: &str, line: usize) -> Option<usize> {
    let mut current = 1usize;
    let mut start = 0usize;
    loop {
        let end = src[start..]
            .find('\n')
            .map(|p| start + p)
            .unwrap_or(src.len());
        if current == line {
            return Some(end);
        }
        if end == src.len() {
            return None;
        }
        start = end + 1;
        current += 1;
    }
}

/// Walks a simple operand chain *backwards* from `i` (exclusive): a
/// dotted identifier chain (`self.cfg.threshold`, `score`) or a single
/// numeric literal. Returns the index of its first token, or `None` when
/// the preceding expression is not simple.
fn chain_start(src: &str, toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i.checked_sub(1)?;
    match toks[j].kind {
        TokenKind::Num => return Some(j),
        TokenKind::Ident => {}
        _ => return None,
    }
    loop {
        let Some(dot) = j.checked_sub(1) else {
            return Some(j);
        };
        if toks[dot].kind != TokenKind::Punct || toks[dot].text(src) != "." {
            // A `*`/`&`/call shape in front means the operand is not a
            // plain chain — refuse to fix.
            if toks[dot].kind == TokenKind::Punct
                && matches!(toks[dot].text(src), "*" | "&" | ")" | "]")
            {
                return None;
            }
            return Some(j);
        }
        let prev = dot.checked_sub(1)?;
        if toks[prev].kind != TokenKind::Ident {
            return None;
        }
        j = prev;
    }
}

/// Walks a simple operand chain *forwards* from `i` (inclusive); returns
/// the index one past its last token.
fn chain_end(src: &str, toks: &[Token], i: usize) -> Option<usize> {
    match toks.get(i)?.kind {
        TokenKind::Num => return Some(i + 1),
        TokenKind::Ident => {}
        _ => return None,
    }
    let mut j = i;
    loop {
        let dot = j + 1;
        if dot >= toks.len() || toks[dot].kind != TokenKind::Punct || toks[dot].text(src) != "." {
            // A following `(` makes it a call — not a simple chain.
            if dot < toks.len() && toks[dot].kind == TokenKind::Punct && toks[dot].text(src) == "("
            {
                return None;
            }
            return Some(j + 1);
        }
        let name = dot + 1;
        if name >= toks.len() || toks[name].kind != TokenKind::Ident {
            return None;
        }
        j = name;
    }
}

/// D003: rewrites a float `==`/`!=` on `line` to a `to_bits()` identity
/// comparison when both operands are simple chains or literals. The
/// lexer emits `==`/`!=` as two adjacent punct tokens (`=`+`=`, `!`+`=`)
/// — matched here by byte adjacency.
fn fix_d003(src: &str, toks: &[Token], line: usize, patches: &mut Vec<Patch>) {
    for (i, t) in toks.iter().enumerate() {
        if t.line != line || t.kind != TokenKind::Punct {
            continue;
        }
        let first = t.text(src);
        if !matches!(first, "=" | "!") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.kind != TokenKind::Punct || next.text(src) != "=" || next.start != t.end {
            continue;
        }
        let op = if first == "=" { "==" } else { "!=" };
        let Some(lhs_start) = chain_start(src, toks, i) else {
            continue;
        };
        let Some(rhs_end) = chain_end(src, toks, i + 2) else {
            continue;
        };
        let lhs = &src[toks[lhs_start].start..toks[i - 1].end];
        let rhs = &src[toks[i + 2].start..toks[rhs_end - 1].end];
        patches.push(Patch {
            start: toks[lhs_start].start,
            end: toks[rhs_end - 1].end,
            replacement: format!("({lhs}).to_bits() {op} ({rhs}).to_bits()"),
        });
        return;
    }
}

/// D005: appends the justification template to the bare `#[allow(...)]`
/// line — any same-line comment satisfies the rule, and the template
/// tells a human what to write.
fn fix_d005(src: &str, line: usize, patches: &mut Vec<Patch>) {
    let Some(at) = line_end_offset(src, line) else {
        return;
    };
    patches.push(Patch {
        start: at,
        end: at,
        replacement: " // TODO(audit): justify this allow or remove it".to_string(),
    });
}

/// D010: rewrites `x as u32` to `u32::try_from(x).expect(..)` for the
/// operand/target named in the finding note, and appends a justified
/// `allow(D004)` so the introduced `expect` (a *deliberate*, loud
/// failure) does not itself trip the panic rules on re-scan.
fn fix_d010(src: &str, toks: &[Token], f: &Finding, patches: &mut Vec<Patch>) {
    // The note reads "`raw` (u64) truncated by `as u16`, …". Constant
    // overflows ("constant N does not fit …") are real bugs, not
    // mechanical rewrites — left to a human.
    let note = f.note.as_deref().unwrap_or("");
    if !note.contains("truncated by") {
        return;
    }
    let mut ticks = note.split('`');
    let operand = match (ticks.next(), ticks.next()) {
        (Some(_), Some(op)) => op,
        _ => return,
    };
    for (i, t) in toks.iter().enumerate() {
        if t.line != f.line || t.kind != TokenKind::Ident || t.text(src) != "as" {
            continue;
        }
        let (Some(op_at), Some(target_at)) = (i.checked_sub(1), Some(i + 1)) else {
            continue;
        };
        if target_at >= toks.len()
            || toks[op_at].kind != TokenKind::Ident
            || toks[op_at].text(src) != operand
            || toks[target_at].kind != TokenKind::Ident
        {
            continue;
        }
        let target = toks[target_at].text(src);
        patches.push(Patch {
            start: toks[op_at].start,
            end: toks[target_at].end,
            replacement: format!(
                "{target}::try_from({operand}).expect(\"audit(D010): {operand} out of {target} range\")"
            ),
        });
        if let Some(eol) = line_end_offset(src, f.line) {
            patches.push(Patch {
                start: eol,
                end: eol,
                replacement: format!(
                    " // audit: allow(D004, reason = \"checked narrowing introduced by --fix; out-of-range {operand} is corrupt input and must fail loudly\")"
                ),
            });
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_source;

    fn lex_code(src: &str) -> Vec<Token> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect()
    }

    fn apply(src: &str, patches: Vec<Patch>) -> String {
        let mut out = src.to_string();
        let mut sorted = patches;
        sorted.sort_by_key(|p| std::cmp::Reverse(p.start));
        for p in sorted {
            out.replace_range(p.start..p.end, &p.replacement);
        }
        out
    }

    #[test]
    fn d003_simple_identifiers_become_to_bits() {
        let src = "fn f(score: f64, threshold: f64) -> bool { score == threshold }\n";
        let toks = lex_code(src);
        let mut patches = Vec::new();
        fix_d003(src, &toks, 1, &mut patches);
        let fixed = apply(src, patches);
        assert!(
            fixed.contains("(score).to_bits() == (threshold).to_bits()"),
            "{fixed}"
        );
        // Re-scan: the mechanical rule is clean after the fix.
        assert!(scan_source("crates/sim/src/fixture.rs", &fixed).is_empty());
    }

    #[test]
    fn d003_dotted_chain_and_literal() {
        let src = "fn f(s: &S) -> bool { s.cfg.threshold != 0.5 }\n";
        let toks = lex_code(src);
        let mut patches = Vec::new();
        fix_d003(src, &toks, 1, &mut patches);
        let fixed = apply(src, patches);
        assert!(
            fixed.contains("(s.cfg.threshold).to_bits() != (0.5).to_bits()"),
            "{fixed}"
        );
    }

    #[test]
    fn d003_refuses_side_effecting_operands() {
        let src = "fn f(v: &[f64]) -> bool { v.iter().sum::<f64>() == 1.0 }\n";
        let toks = lex_code(src);
        let mut patches = Vec::new();
        fix_d003(src, &toks, 1, &mut patches);
        assert!(patches.is_empty(), "call operands must not be rewritten");
    }

    #[test]
    fn d005_appends_justification_template() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        let mut patches = Vec::new();
        fix_d005(src, 1, &mut patches);
        let fixed = apply(src, patches);
        assert!(fixed.starts_with("#[allow(dead_code)] // TODO(audit):"));
        // The same-line comment satisfies D005 on re-scan.
        assert!(scan_source("crates/ml/src/fixture.rs", &fixed).is_empty());
    }

    #[test]
    fn d010_rewrites_to_checked_conversion() {
        let src = "fn slot(raw: u64) -> u16 {\n    raw as u16\n}\n";
        let toks = lex_code(src);
        let f = Finding {
            rule: Rule::D010,
            file: "crates/sim/src/x.rs".into(),
            line: 2,
            snippet: "raw as u16".into(),
            note: Some("`raw` (u64) truncated by `as u16`, reachable via run_fleet".into()),
            severity: Rule::D010.severity(),
        };
        let mut patches = Vec::new();
        fix_d010(src, &toks, &f, &mut patches);
        let fixed = apply(src, patches);
        assert!(
            fixed.contains("u16::try_from(raw).expect(\"audit(D010): raw out of u16 range\")"),
            "{fixed}"
        );
        assert!(
            fixed.contains("audit: allow(D004"),
            "the introduced expect must carry its own justification: {fixed}"
        );
    }

    #[test]
    fn d010_skips_constant_overflow_notes() {
        let src = "fn f() -> u8 {\n    let cap = 256;\n    cap as u8\n}\n";
        let toks = lex_code(src);
        let f = Finding {
            rule: Rule::D010,
            file: "x.rs".into(),
            line: 3,
            snippet: "cap as u8".into(),
            note: Some("constant 256 does not fit `u8` (`cap as u8`)".into()),
            severity: Rule::D010.severity(),
        };
        let mut patches = Vec::new();
        fix_d010(src, &toks, &f, &mut patches);
        assert!(
            patches.is_empty(),
            "constant overflow is a bug, not a rewrite"
        );
    }
}
