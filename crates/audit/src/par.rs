//! Scoped-thread fan-out for the file-scan phase.
//!
//! Mirrors `cfa_core::parallel::map_chunks` — contiguous index chunks on
//! `std::thread::scope`, outputs concatenated **in input order** so the
//! result is identical, bit for bit, at every thread count — but lives
//! here because the analyzer is deliberately dependency-free: linking the
//! whole detector stack into the audit binary for one twenty-line
//! primitive would be backwards.

use std::ops::Range;

/// Runs `f` over `0..n` split into at most `threads` contiguous chunks
/// and concatenates the per-chunk outputs in input order.
///
/// `f` receives the index sub-range it owns and returns one output per
/// index, in order. With one thread (or one chunk) `f` runs inline on the
/// calling thread and no thread is spawned — exactly the serial path.
pub fn map_chunks<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let n_threads = threads.max(1).min(n.max(1));
    if n_threads <= 1 {
        return f(0..n);
    }
    // Chunks differ in size by at most one, larger chunks first.
    let base = n / n_threads;
    let extra = n % n_threads;
    let mut ranges = Vec::with_capacity(n_threads);
    let mut start = 0;
    for t in 0..n_threads {
        let len = base + usize::from(t < extra);
        ranges.push(start..start + len);
        start += len;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        let mut out = Vec::with_capacity(n);
        // Joining in spawn order keeps the concatenation deterministic.
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_identical_at_any_thread_count() {
        let serial = map_chunks(1, 100, |r| r.map(|i| i * 3).collect());
        for threads in [2, 3, 4, 7] {
            let par = map_chunks(threads, 100, |r| r.map(|i| i * 3).collect());
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn zero_threads_and_empty_input_are_fine() {
        assert_eq!(map_chunks(0, 3, |r| r.collect::<Vec<_>>()), vec![0, 1, 2]);
        assert!(map_chunks(4, 0, |r| r.collect::<Vec<usize>>()).is_empty());
    }
}
