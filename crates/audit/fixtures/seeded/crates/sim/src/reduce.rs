//! Seeded D009 violations: non-canonical float reductions over parallel
//! fan-out results — the combine order silently depends on chunking and
//! no allow documents why it would be thread-count invariant.

/// Sums per-chunk partial results straight off `map_chunks` — if the
/// closure returns per-chunk partial sums, the grouping (and thus the
/// f64 rounding) changes with the thread count.
pub fn parallel_mean(par: Parallelism, n: usize) -> f64 {
    let parts = map_chunks(par, n, |range| range.len() as f64);
    parts.iter().sum::<f64>() / n as f64
}

/// Accumulates joined thread results in completion-agnostic order into a
/// float — same hazard, spelled as a loop.
pub fn joined_total(handles: Vec<JoinHandle<f64>>) -> f64 {
    let mut total = 0.0f64;
    for h in handles {
        total += h.join().unwrap_or(0.0);
    }
    total
}
