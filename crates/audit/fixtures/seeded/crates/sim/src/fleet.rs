//! Seeded D010 violation: a wide node-id value silently truncated to the
//! wire-width `u16` on the fleet (panic-policed) path.

/// Drives a batch of simulations; `run_fleet` is a D006/D010 hot root.
pub fn run_fleet(seeds: &[u64]) -> u16 {
    let mut last = 0;
    for &seed in seeds {
        let raw: u64 = mix(seed);
        last = node_slot(raw);
    }
    last
}

fn mix(seed: u64) -> u64 {
    seed ^ (seed >> 33)
}

/// NodeId is `u16` on the wire; this silently drops the high 48 bits of
/// a colliding id instead of failing loudly.
fn node_slot(raw: u64) -> u16 {
    raw as u16
}
