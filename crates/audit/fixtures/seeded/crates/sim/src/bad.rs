//! Seeded D001/D003/D004 violations for the cfa-audit acceptance test.
//! This file is never compiled; it exists to be scanned.

use std::collections::HashMap;

struct Table {
    routes: HashMap<u32, u32>,
}

fn leak_order(t: &Table) -> Vec<u32> {
    // D001: unordered iteration in a deterministic crate path.
    t.routes.values().copied().collect()
}

fn loop_order(t: &Table) {
    // D001: for-loop form.
    for (k, v) in &t.routes {
        drop((k, v));
    }
}

fn allowed_count(t: &Table) -> usize {
    // audit: allow(D001, reason = "counting only; order cannot escape")
    t.routes.keys().count()
}

fn float_eq(score: f64) -> bool {
    // D003: bitwise float comparison.
    score == 0.0
}

fn hot_unwrap(v: &[u32]) -> u32 {
    // D004: panic in library hot-path code.
    *v.last().unwrap()
}
