//! Seeded spatial-grid and fleet-path violations for the cfa-audit
//! acceptance test. This file is never compiled; it exists to be scanned.
//!
//! * `SpatialGrid::candidates_into` is a D008 predict/hot-path root: the
//!   real grid query runs once per transmitted frame and must reuse
//!   caller scratch. The seeded copy allocates per call, both directly
//!   and through a helper, so the root cannot silently go blind.
//! * `run_fleet` is a D006 panic root: the seeded copy panics on an
//!   empty seed list.

pub struct SpatialGrid {
    cells: Vec<Vec<u16>>,
}

impl SpatialGrid {
    fn cell_members(&self, idx: usize) -> Vec<u16> {
        // D008: to_vec() clones the cell on every query.
        self.cells[idx].to_vec()
    }

    pub fn candidates_into(&self, idx: usize, out: &mut Vec<u16>) {
        // D008: collect() builds a fresh Vec inside the per-frame query.
        let sorted: Vec<u16> = self.cell_members(idx).into_iter().collect();
        out.extend(sorted);
    }
}

pub fn run_fleet(seeds: &[u64]) -> u64 {
    // D006: panic reachable from the fleet corpus-production root.
    *seeds.first().expect("fleet needs at least one seed")
}
