//! Seeded D006/D007 violations: a toy event loop whose dispatch can
//! panic and whose per-event log grows without bound.
//! This file is never compiled; it exists to be scanned.

pub struct Simulator {
    pending: Vec<u32>,
    log: Vec<u32>,
}

impl Simulator {
    /// Event-loop entry point — a D006/D007 reachability root.
    pub fn run(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            self.dispatch(i);
            i += 1;
        }
    }

    fn dispatch(&mut self, i: usize) {
        // D006: slice indexing transitively reachable from Simulator::run.
        let ev = self.pending[i];
        self.record(ev);
    }

    fn record(&mut self, ev: u32) {
        // D007: grows on the event path; no method of Simulator evicts.
        self.log.push(ev);
    }
}
