//! Seeded D011 violations: the response-queue guard held across socket
//! I/O in the connection loop, and a nested lock acquisition.

/// Flushes queued frames while still holding the queue lock — every
/// other worker blocks on the mutex for a full network round-trip.
pub fn pump(stream: &mut TcpStream, queue: &Mutex<VecDeque<Frame>>) -> io::Result<()> {
    let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
    while let Some(frame) = q.pop_front() {
        stream.write_all(&frame.bytes)?;
    }
    Ok(())
}

/// Takes the stats lock while the queue guard is still live — the
/// accept loop takes them in the opposite order.
pub fn snapshot(queue: &Mutex<VecDeque<Frame>>, stats: &Mutex<Stats>) -> usize {
    let q = queue.lock().unwrap_or_else(|p| p.into_inner());
    let s = stats.lock().unwrap_or_else(|p| p.into_inner());
    q.len() + s.served
}

/// Accept-loop bookkeeping takes the locks in the opposite order from
/// `snapshot` — stats first, then queue — closing a lock-order cycle
/// (D014): one thread in `snapshot`, one here, each holding what the
/// other wants.
pub fn retire(queue: &Mutex<VecDeque<Frame>>, stats: &Mutex<Stats>) {
    let mut s = stats.lock().unwrap_or_else(|p| p.into_inner());
    let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
    s.served += q.len();
    q.clear();
}

/// Holds the stats guard across a call that blocks on the socket —
/// `forward` looks innocent from here, but it pins the lock for a full
/// network round-trip (D014).
pub fn relay(stream: &mut TcpStream, stats: &Mutex<Stats>, frame: &Frame) -> io::Result<()> {
    let s = stats.lock().unwrap_or_else(|p| p.into_inner());
    forward(stream, frame)?;
    drop(s);
    Ok(())
}

/// The blocking leaf `relay` reaches while holding the stats lock.
fn forward(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.bytes)
}
