//! Seeded D011 violations: the response-queue guard held across socket
//! I/O in the connection loop, and a nested lock acquisition.

/// Flushes queued frames while still holding the queue lock — every
/// other worker blocks on the mutex for a full network round-trip.
pub fn pump(stream: &mut TcpStream, queue: &Mutex<VecDeque<Frame>>) -> io::Result<()> {
    let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
    while let Some(frame) = q.pop_front() {
        stream.write_all(&frame.bytes)?;
    }
    Ok(())
}

/// Takes the stats lock while the queue guard is still live — the
/// accept loop takes them in the opposite order.
pub fn snapshot(queue: &Mutex<VecDeque<Frame>>, stats: &Mutex<Stats>) -> usize {
    let q = queue.lock().unwrap_or_else(|p| p.into_inner());
    let s = stats.lock().unwrap_or_else(|p| p.into_inner());
    q.len() + s.served
}
