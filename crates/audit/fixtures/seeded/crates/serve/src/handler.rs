//! Seeded D006/D008 violations on the cfa-serve request path: a toy
//! request handler that indexes a network-controlled buffer and a
//! serving hot loop that allocates per request.
//! This file is never compiled; it exists to be scanned.

pub struct Worker {
    scratch: Vec<f64>,
}

impl Worker {
    /// Per-connection request handler — a D006 reachability root.
    pub fn handle_conn(&mut self, frame: &[u8]) -> f64 {
        self.parse_op(frame)
    }

    fn parse_op(&mut self, frame: &[u8]) -> f64 {
        // D006: indexing a network-controlled buffer on the request path.
        let op = frame[0];
        f64::from(op) + self.score_rows_into(frame)
    }

    /// Serving hot loop — a D008 reachability root.
    fn score_rows_into(&mut self, rows: &[u8]) -> f64 {
        self.decode(rows)
    }

    fn decode(&mut self, rows: &[u8]) -> f64 {
        // D008: allocates per request on the serving hot loop.
        let copy: Vec<u8> = rows.to_vec();
        copy.len() as f64 + self.scratch.len() as f64
    }
}
