//! Seeded violations on the fleet front-end paths: a panic site
//! reachable from the reactor event loop (D006), a per-alarm allocation
//! inside the fan-out sweep (D008), and a lock-order cycle between the
//! registry map and the generation table (D014).
//! This file is never compiled; it exists to be scanned.

pub struct Reactor {
    table: Vec<u32>,
}

impl Reactor {
    /// The single event loop — a D006 reachability root: one panic here
    /// drops every connection in the poll table at once.
    pub fn run(&mut self, events: &[u8]) -> u32 {
        self.sweep(events)
    }

    fn sweep(&mut self, events: &[u8]) -> u32 {
        // D006: indexing network-driven bytes on the event loop.
        let slot = events[3];
        self.table[slot as usize]
    }
}

pub struct Subscribers {
    frame: Vec<u8>,
}

impl Subscribers {
    /// Alarm fan-out — a D008 reachability root: runs per alarm × per
    /// subscriber on the reactor thread.
    pub fn fanout_alarms(&mut self, alarms: &[(u32, f64)]) -> usize {
        self.push_all(alarms)
    }

    fn push_all(&mut self, alarms: &[(u32, f64)]) -> usize {
        let mut total = 0;
        for &(row, score) in alarms {
            // D008: allocates a fresh frame per alarm instead of reusing
            // the scratch buffer.
            let frame: Vec<u8> = score.to_le_bytes().to_vec();
            total += frame.len() + row as usize + self.frame.len();
        }
        total
    }
}

/// Swaps a model entry: takes the registry map lock, then the
/// generation-table lock while the map guard is still live.
pub fn swap_model(models: &Mutex<BTreeMap<String, Model>>, gens: &Mutex<Vec<u64>>) {
    let mut m = models.lock().unwrap_or_else(|p| p.into_inner());
    let mut g = gens.lock().unwrap_or_else(|p| p.into_inner());
    g.push(m.len() as u64);
}

/// Reads generations in the opposite order — gens first, then the
/// registry map — closing a lock-order cycle with `swap_model` (D014):
/// one thread mid-swap, one here, each holding what the other wants.
pub fn list_generations(models: &Mutex<BTreeMap<String, Model>>, gens: &Mutex<Vec<u64>>) -> usize {
    let g = gens.lock().unwrap_or_else(|p| p.into_inner());
    let m = models.lock().unwrap_or_else(|p| p.into_inner());
    g.len() + m.len()
}
