//! Seeded D012/D013 violations: network-read bytes flowing into an
//! allocation size, a jump-table index, and wrapping arithmetic with no
//! dominating bound check. This file is never compiled; it exists to be
//! scanned.

/// Reads a length prefix off the wire and allocates for it verbatim —
/// a peer declaring 4 GiB gets 4 GiB reserved (D012).
pub fn read_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len4 = [0u8; 4];
    stream.read_exact(&mut len4).ok();
    let len = decode_len(&len4);
    alloc_body(len)
}

/// Little-endian decode; the taint rides through the arithmetic.
fn decode_len(b: &[u8]) -> usize {
    let lo = b[0] as usize;
    let hi = b[1] as usize;
    lo + hi * 256
}

/// The allocation sink, two calls away from the socket read.
fn alloc_body(len: usize) -> Vec<u8> {
    // D012: attacker-declared length used as an allocation size.
    let mut body = Vec::with_capacity(len);
    body.resize(len, 0);
    body
}

/// Dispatches on the first payload byte by indexing the jump table —
/// a byte past the table length panics the worker (D013).
pub fn dispatch(stream: &mut TcpStream, table: &[u8]) -> u8 {
    let mut op = [0u8; 1];
    stream.read(&mut op).ok();
    let idx = op[0] as usize;
    table[idx]
}

/// Folds the advertised sequence byte with wrapping arithmetic — a
/// hostile peer steers the product anywhere in u32 space (D013).
pub fn fold_seq(stream: &mut TcpStream) -> u32 {
    let mut seq = [0u8; 1];
    stream.read(&mut seq).ok();
    let s = seq[0] as u32;
    s.wrapping_mul(2654435761)
}
