//! Seeded D002/D005 violations for the cfa-audit acceptance test.
//! This file is never compiled; it exists to be scanned.

fn wall_clock() -> std::time::SystemTime {
    // D002: wall clock outside crates/bench.
    std::time::SystemTime::now()
}

#[allow(dead_code)]
fn bare_allow() {} // the attribute above is D005: no justification comment
