//! Seeded violations on the compiled-engine scoring path. This file is
//! never compiled; it exists to be scanned. The qualified roots
//! `CompiledEnsemble::score_batch` / `CompiledEnsemble::score_row` must
//! keep seeding D008 and D006 reachability, so a panic or allocation
//! introduced on the compiled path cannot go blind.

pub struct CompiledEnsemble {
    tables: Vec<f64>,
}

impl CompiledEnsemble {
    /// Structure-of-arrays batch scoring entry — a qualified D008/D006
    /// reachability root.
    pub fn score_batch(&self, rows: &[u8], out: &mut Vec<f64>) {
        out.clear();
        for row in rows.chunks(4) {
            out.push(self.one(row));
        }
    }

    /// Per-row scoring entry — a qualified D008/D006 reachability root.
    pub fn score_row(&self, row: &[u8]) -> f64 {
        self.one(row)
    }

    fn one(&self, row: &[u8]) -> f64 {
        // D008: allocates per row on the compiled scoring path.
        let widened = row.to_vec();
        // D006: indexing panics when the row byte overruns the table.
        widened.len() as f64 + self.tables[row[0] as usize]
    }
}
