//! Seeded D008 violation: allocation reachable from the zero-alloc
//! predict path. This file is never compiled; it exists to be scanned.

pub struct Model {
    weights: Vec<f64>,
}

impl Model {
    /// Per-row scoring entry point — a D008 reachability root.
    pub fn predict_row(&self, row: &[u8]) -> f64 {
        self.widen(row)
    }

    fn widen(&self, row: &[u8]) -> f64 {
        // D008: allocates on the predict path.
        let copy = row.to_vec();
        copy.len() as f64 + self.weights.len() as f64
    }
}
