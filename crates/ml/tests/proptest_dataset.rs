//! Property-based tests for the columnar [`NominalTable`] storage: every
//! view (columns, gathered rows, scalar access, row splitting) must agree
//! with a plain row-major reference of the same data.

use cfa_ml::NominalTable;
use proptest::prelude::*;

/// Strategy: random row-major data with 1–6 columns of cardinality 1–5
/// and 0–40 rows. Raw cells are drawn from the widest domain and folded
/// into each column's cardinality, so every row is valid by construction.
fn rows_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<u8>>)> {
    proptest::collection::vec(1usize..=5, 1..=6).prop_flat_map(|cards| {
        let n_cols = cards.len();
        let rows = proptest::collection::vec(proptest::collection::vec(0u8..5, n_cols), 0..40);
        rows.prop_map(move |raw| {
            let rows: Vec<Vec<u8>> = raw
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .zip(&cards)
                        .map(|(v, &c)| v % c as u8)
                        .collect()
                })
                .collect();
            (cards.clone(), rows)
        })
    })
}

fn table_of(cards: &[usize], rows: &[Vec<u8>]) -> NominalTable {
    NominalTable::new(
        (0..cards.len()).map(|i| format!("f{i}")).collect(),
        cards.to_vec(),
        rows.to_vec(),
    )
    .expect("generated within domain")
}

proptest! {
    /// Row-major in, columnar storage, row-major out: a full round trip
    /// loses nothing, and the transposed views agree cell by cell.
    #[test]
    fn columnar_views_match_the_row_major_reference(
        (cards, rows) in rows_strategy()
    ) {
        let t = table_of(&cards, &rows);
        prop_assert_eq!(t.n_rows(), rows.len());
        prop_assert_eq!(t.n_cols(), cards.len());
        // Column views are the transpose of the reference rows.
        for c in 0..cards.len() {
            let expected: Vec<u8> = rows.iter().map(|r| r[c]).collect();
            prop_assert_eq!(t.col(c), &expected[..], "column {}", c);
        }
        // Scalar access and gathered rows reproduce the reference exactly.
        let mut buf = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                prop_assert_eq!(t.value(r, c), v);
            }
            t.copy_row_into(r, &mut buf);
            prop_assert_eq!(&buf, row, "row {}", r);
        }
        prop_assert_eq!(t.to_rows(), rows);
    }

    /// `from_columns` and `new` build identical tables from transposed
    /// views of the same data.
    #[test]
    fn from_columns_agrees_with_row_major_construction(
        (cards, rows) in rows_strategy()
    ) {
        let by_rows = table_of(&cards, &rows);
        let cols: Vec<Vec<u8>> = (0..cards.len())
            .map(|c| rows.iter().map(|r| r[c]).collect())
            .collect();
        let by_cols = NominalTable::from_columns(
            (0..cards.len()).map(|i| format!("f{i}")).collect(),
            cards.clone(),
            cols,
        )
        .expect("transposed data is valid");
        prop_assert_eq!(by_cols.to_rows(), by_rows.to_rows());
        for c in 0..cards.len() {
            prop_assert_eq!(by_cols.col(c), by_rows.col(c));
        }
    }

    /// Splitting a row around any class column returns the class value and
    /// the remaining attributes in order.
    #[test]
    fn split_row_into_matches_manual_removal(
        (cards, rows) in rows_strategy(),
        class_sel in 0usize..6,
    ) {
        let _ = table_of(&cards, &rows);
        let class_col = class_sel % cards.len();
        let mut attrs = Vec::new();
        for row in &rows {
            let y = NominalTable::split_row_into(row, class_col, &mut attrs);
            prop_assert_eq!(y, row[class_col]);
            let expected: Vec<u8> = row
                .iter()
                .enumerate()
                .filter(|&(c, _)| c != class_col)
                .map(|(_, &v)| v)
                .collect();
            prop_assert_eq!(&attrs, &expected);
        }
    }
}
