//! Property-based tests: invariants every classifier must satisfy on
//! arbitrary (valid) nominal tables.

use cfa_ml::{Classifier, Learner, NaiveBayes, NominalTable, Ripper, C45};
use proptest::prelude::*;

/// Strategy: a random nominal table with 2–5 columns of cardinality 2–4
/// and 4–60 rows, plus a designated class column.
fn table_strategy() -> impl Strategy<Value = (NominalTable, usize)> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(n_cols, card)| {
        let rows =
            proptest::collection::vec(proptest::collection::vec(0u8..card as u8, n_cols), 4..60);
        (rows, 0..n_cols).prop_map(move |(rows, class_col)| {
            let names = (0..n_cols).map(|i| format!("f{i}")).collect();
            let cards = vec![card; n_cols];
            (
                NominalTable::new(names, cards, rows).expect("generated within domain"),
                class_col,
            )
        })
    })
}

fn check_model<C: Classifier>(model: &C, table: &NominalTable, class_col: usize) {
    check_model_inner(model, table, class_col, true);
}

/// `predict_is_argmax`: RIPPER's first-match rule semantics legitimately
/// let `predict` differ from the argmax of `class_probs` (the rule's class
/// wins even when its captured distribution is impure).
fn check_model_inner<C: Classifier>(
    model: &C,
    table: &NominalTable,
    class_col: usize,
    predict_is_argmax: bool,
) {
    let k = table.cards()[class_col];
    assert_eq!(model.n_classes(), k);
    let mut row = Vec::new();
    let mut attrs = Vec::new();
    let mut scratch = Vec::new();
    for r in 0..table.n_rows().min(20) {
        table.copy_row_into(r, &mut row);
        NominalTable::split_row_into(&row, class_col, &mut attrs);
        let probs = model.class_probs(&attrs);
        assert_eq!(probs.len(), k);
        let sum: f64 = probs.iter().sum();
        prop_assert_in_range(sum);
        assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        // The zero-alloc full-row path must agree bitwise with the bare
        // attribute-vector path.
        model.class_probs_into(&row, class_col, &mut scratch);
        assert_eq!(probs, scratch, "full-row and bare-attr probs must agree");
        let pred = model.predict(&attrs);
        assert_eq!(
            pred,
            model.predict_row(&row, class_col, &mut scratch),
            "full-row and bare-attr predictions must agree"
        );
        assert!((pred as usize) < k, "prediction within class domain");
        if predict_is_argmax {
            // predict must be the argmax of class_probs.
            let max = probs.iter().cloned().fold(f64::MIN, f64::max);
            assert!((probs[pred as usize] - max).abs() < 1e-9);
        }
    }
}

fn prop_assert_in_range(sum: f64) {
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities must sum to 1, got {sum}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn c45_invariants((table, class_col) in table_strategy()) {
        let model = C45::default().fit(&table, class_col);
        check_model(&model, &table, class_col);
    }

    #[test]
    fn ripper_invariants((table, class_col) in table_strategy()) {
        let model = Ripper::default().fit(&table, class_col);
        check_model_inner(&model, &table, class_col, false);
    }

    #[test]
    fn naive_bayes_invariants((table, class_col) in table_strategy()) {
        let model = NaiveBayes::default().fit(&table, class_col);
        check_model(&model, &table, class_col);
    }

    #[test]
    fn constant_class_is_always_predicted(
        rows in proptest::collection::vec(proptest::collection::vec(0u8..3, 3), 4..40)
    ) {
        // Force the class column constant.
        let rows: Vec<Vec<u8>> = rows.into_iter().map(|mut r| { r[2] = 1; r }).collect();
        let table = NominalTable::new(
            vec!["a".into(), "b".into(), "y".into()],
            vec![3, 3, 3],
            rows,
        ).expect("valid");
        for model in [
            Box::new(C45::default().fit(&table, 2)) as Box<dyn Classifier>,
            Box::new(Ripper::default().fit(&table, 2)),
            Box::new(NaiveBayes::default().fit(&table, 2)),
        ] {
            let mut scratch = Vec::new();
            for row in table.to_rows() {
                assert_eq!(model.predict_row(&row, 2, &mut scratch), 1);
            }
        }
    }

    #[test]
    fn training_is_deterministic((table, class_col) in table_strategy()) {
        let a = Ripper::default().fit(&table, class_col);
        let b = Ripper::default().fit(&table, class_col);
        assert_eq!(a.rules(), b.rules());
    }
}
