//! Property-based persistence tests: arbitrary trained models survive a
//! save→load round trip bit-identically, and arbitrary corruption of the
//! encoded bytes produces typed errors — never a panic.

use cfa_ml::persist::{Persist, PersistError};
use cfa_ml::{AnyLearner, AnyModel, Classifier, Learner, NaiveBayes, NominalTable, Ripper, C45};
use proptest::prelude::*;

/// Strategy: a random nominal table with 2–5 columns of cardinality 2–4
/// and 6–50 rows, plus a designated class column.
fn table_strategy() -> impl Strategy<Value = (NominalTable, usize)> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(n_cols, card)| {
        let rows =
            proptest::collection::vec(proptest::collection::vec(0u8..card as u8, n_cols), 6..50);
        (rows, 0..n_cols).prop_map(move |(rows, class_col)| {
            let names = (0..n_cols).map(|i| format!("f{i}")).collect();
            let cards = vec![card; n_cols];
            (
                NominalTable::new(names, cards, rows).expect("generated within domain"),
                class_col,
            )
        })
    })
}

fn learner_for(tag: u8) -> AnyLearner {
    match tag % 3 {
        0 => AnyLearner::C45(C45::default()),
        1 => AnyLearner::Ripper(Ripper::default()),
        _ => AnyLearner::Bayes(NaiveBayes::default()),
    }
}

/// Round-trips a model and checks structural equality plus bitwise score
/// equality on every training row.
fn assert_round_trip(model: &AnyModel, table: &NominalTable, class_col: usize) {
    let bytes = model.to_bytes();
    let loaded = AnyModel::from_bytes(&bytes).expect("round trip must decode");
    assert_eq!(*model, loaded, "round-tripped model must be equal");
    // Scores must be reproduced to the exact bit pattern.
    let mut row = Vec::new();
    let mut scratch_a = Vec::new();
    let mut scratch_b = Vec::new();
    for r in 0..table.n_rows().min(16) {
        table.copy_row_into(r, &mut row);
        let truth = row[class_col];
        let a = model.prob_of_row(&row, class_col, truth, &mut scratch_a);
        let b = loaded.prob_of_row(&row, class_col, truth, &mut scratch_b);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "probabilities must be bit-identical"
        );
        assert_eq!(
            model.predict_row(&row, class_col, &mut scratch_a),
            loaded.predict_row(&row, class_col, &mut scratch_b),
            "predictions must agree"
        );
    }
    // Serialization itself must be byte-deterministic.
    assert_eq!(bytes, loaded.to_bytes(), "encoding must be deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_trained_models_survive_round_trip(
        (table, class_col) in table_strategy(),
        learner_tag in 0u8..3,
    ) {
        let model = learner_for(learner_tag).fit(&table, class_col);
        assert_round_trip(&model, &table, class_col);
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(
        (table, class_col) in table_strategy(),
        learner_tag in 0u8..3,
        cut_frac in 0.0f64..1.0,
    ) {
        let model = learner_for(learner_tag).fit(&table, class_col);
        let bytes = model.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            // Every strict prefix must fail decodably, not panic.
            prop_assert!(AnyModel::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        (table, class_col) in table_strategy(),
        learner_tag in 0u8..3,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let model = learner_for(learner_tag).fit(&table, class_col);
        let mut bytes = model.to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= xor;
        // A flipped byte may still decode (e.g. an f64 payload bit) — the
        // property is the absence of panics and of undecoded trailing
        // garbage, which from_bytes already enforces.
        match AnyModel::from_bytes(&bytes) {
            Ok(decoded) => {
                // Whatever decoded must re-encode to the same bytes.
                prop_assert_eq!(decoded.to_bytes(), bytes);
            }
            Err(
                PersistError::Malformed(_)
                | PersistError::Truncated { .. }
                | PersistError::TooLarge { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }
}
