//! Property-based tests of the compiled execution path: for arbitrary
//! trained models of every family, the flat compiled form must reproduce
//! the interpreted [`Classifier`] output **bit for bit** — probabilities,
//! predictions, single-class lookups (in- and out-of-range), and whole
//! ensemble scores through both `score_row` and the SoA `score_batch`.

use cfa_ml::compiled::{CompiledEnsemble, CompiledMethod, CompiledModel};
use cfa_ml::{AnyLearner, AnyModel, Classifier, Learner, NaiveBayes, NominalTable, Ripper, C45};
use proptest::prelude::*;

/// Strategy: a random nominal table with 2–5 columns of cardinality 2–4
/// and 8–60 rows, a designated class column, and probe rows that may
/// carry out-of-domain values (the classifiers clamp them).
fn table_strategy() -> impl Strategy<Value = (NominalTable, usize, Vec<Vec<u8>>)> {
    (2usize..=5, 2usize..=4).prop_flat_map(|(n_cols, card)| {
        let rows =
            proptest::collection::vec(proptest::collection::vec(0u8..card as u8, n_cols), 8..60);
        let probes = proptest::collection::vec(
            proptest::collection::vec(0u8..card as u8 + 2, n_cols),
            1..20,
        );
        (rows, 0..n_cols, probes).prop_map(move |(rows, class_col, probes)| {
            let names = (0..n_cols).map(|i| format!("f{i}")).collect();
            let cards = vec![card; n_cols];
            (
                NominalTable::new(names, cards, rows).expect("generated within domain"),
                class_col,
                probes,
            )
        })
    })
}

/// Strategy: one learner of an arbitrary family.
fn learner_strategy() -> impl Strategy<Value = AnyLearner> {
    (0usize..3).prop_map(|family| match family {
        0 => AnyLearner::C45(C45::default()),
        1 => AnyLearner::Ripper(Ripper::default()),
        _ => AnyLearner::Bayes(NaiveBayes::default()),
    })
}

fn assert_compiled_matches(model: &AnyModel, class_col: usize, rows: &[Vec<u8>]) {
    let compiled = CompiledModel::compile(model, class_col);
    assert_eq!(compiled.n_classes(), model.n_classes());
    let mut want = Vec::new();
    let mut got = Vec::new();
    let mut scratch = Vec::new();
    for row in rows {
        model.class_probs_into(row, class_col, &mut want);
        compiled.class_probs_into(row, &mut got);
        let want_bits: Vec<u64> = want.iter().map(|p| p.to_bits()).collect();
        let got_bits: Vec<u64> = got.iter().map(|p| p.to_bits()).collect();
        assert_eq!(want_bits, got_bits, "probs for {row:?}");
        assert_eq!(
            model.predict_row(row, class_col, &mut scratch),
            compiled.predict(row, &mut scratch),
            "prediction for {row:?}"
        );
        for class in 0..model.n_classes() as u8 + 2 {
            assert_eq!(
                model
                    .prob_of_row(row, class_col, class, &mut scratch)
                    .to_bits(),
                compiled.prob_of(row, class, &mut scratch).to_bits(),
                "prob of class {class} for {row:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_models_are_bit_identical(
        (table, class_col, probes) in table_strategy(),
        learner in learner_strategy(),
    ) {
        let model = learner.fit(&table, class_col);
        // Training rows exercise in-domain paths; probe rows add
        // out-of-domain values that hit the clamp and empty branches.
        let mut rows = table.to_rows();
        rows.extend(probes);
        assert_compiled_matches(&model, class_col, &rows);
    }

    #[test]
    fn compiled_ensemble_scores_are_bit_identical(
        (table, _, probes) in table_strategy(),
        learner in learner_strategy(),
    ) {
        // One sub-model per column, each predicting its own column from
        // the rest — the cross-feature ensemble shape.
        let sub_models: Vec<AnyModel> = (0..table.n_cols())
            .map(|i| learner.fit(&table, i))
            .collect();
        let ensemble = CompiledEnsemble::compile(&sub_models);
        let mut rows = table.to_rows();
        rows.extend(probes);
        let packed: Vec<u8> = rows.iter().flatten().copied().collect();
        let mut scratch = Vec::new();
        for method in [CompiledMethod::MatchCount, CompiledMethod::AvgProbability] {
            // The interpreted reference: average per-model contribution,
            // summed in model order (cfa-core's `score_all` shape).
            let interpreted: Vec<u64> = rows
                .iter()
                .map(|row| {
                    let mut total = 0.0;
                    for (i, model) in sub_models.iter().enumerate() {
                        total += match method {
                            CompiledMethod::MatchCount => {
                                f64::from(model.predict_row(row, i, &mut scratch) == row[i])
                            }
                            CompiledMethod::AvgProbability => {
                                model.prob_of_row(row, i, row[i], &mut scratch)
                            }
                        };
                    }
                    (total / sub_models.len() as f64).to_bits()
                })
                .collect();
            let row_at_a_time: Vec<u64> = rows
                .iter()
                .map(|row| ensemble.score_row(row, method, &mut scratch).to_bits())
                .collect();
            let mut batch = Vec::new();
            ensemble.score_batch(&packed, method, &mut batch, &mut scratch);
            let batched: Vec<u64> = batch.iter().map(|s| s.to_bits()).collect();
            assert_eq!(interpreted, row_at_a_time, "score_row vs interpreted");
            assert_eq!(interpreted, batched, "score_batch vs interpreted");
        }
    }
}
