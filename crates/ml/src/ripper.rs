//! A RIPPER-style ordered-rule learner (Cohen's *Repeated Incremental
//! Pruning to Produce Error Reduction*, simplified to its IREP* core).
//!
//! Classes are processed from rarest to most frequent; for each class,
//! rules are grown condition-by-condition to maximise FOIL gain on a
//! growing set, then greedily pruned on a held-out pruning set, until new
//! rules stop being better than chance. Examples covered by accepted rules
//! are removed and the most frequent class becomes the default. Each rule
//! remembers the class distribution of the training rows it captures
//! (first-match), so the model emits calibrated probabilities — the paper
//! computes RIPPER probabilities "in a similar way" to C4.5's leaf
//! frequencies, and found that this probability output dramatically
//! improves RIPPER's detection accuracy (Figure 2).

use crate::dataset::NominalTable;
use crate::{attr_index, check_row_width, Classifier, Learner};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One conjunctive rule: `attr == value ∧ …  →  class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Conjunction of `(attribute index, required value)` tests.
    pub conds: Vec<(usize, u8)>,
    /// Predicted class.
    pub class: u8,
    /// Class distribution of training rows captured by this rule
    /// (first-match semantics), used for probability output.
    pub counts: Vec<u32>,
}

impl Rule {
    /// Whether the rule's conditions all hold for the bare attribute
    /// vector `x`.
    pub fn matches(&self, x: &[u8]) -> bool {
        self.conds.iter().all(|&(a, v)| x[a] == v)
    }

    /// Whether the rule's conditions all hold for a full-width `row`,
    /// skipping `class_col` in place.
    fn matches_row(&self, row: &[u8], class_col: usize) -> bool {
        self.conds
            .iter()
            .all(|&(a, v)| row[attr_index(a, class_col)] == v)
    }
}

/// Configuration for the RIPPER learner.
#[derive(Debug, Clone)]
pub struct Ripper {
    /// Fraction of data held out for rule pruning (Cohen uses 1/3).
    pub prune_fraction: f64,
    /// Maximum conditions per rule (guards degenerate growth).
    pub max_conds: usize,
    /// Seed for the grow/prune shuffles (training is fully deterministic
    /// for a fixed seed).
    pub seed: u64,
    /// Cap on rows considered per rule (grow + prune). Rule growth cost is
    /// linear in this; a few thousand rows are ample to find good
    /// conditions. `usize::MAX` disables the cap.
    pub max_rule_rows: usize,
}

impl Default for Ripper {
    fn default() -> Self {
        Ripper {
            prune_fraction: 1.0 / 3.0,
            max_conds: 16,
            seed: 0x5EED,
            max_rule_rows: 6000,
        }
    }
}

/// A fitted ordered rule list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RipperModel {
    rules: Vec<Rule>,
    default_counts: Vec<u32>,
    n_classes: usize,
    n_attrs: usize,
}

impl RipperModel {
    /// The learned rules, in match order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of attributes the rules can test (class column removed).
    pub(crate) fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Lowers the rule list into its packed compiled form for full-width
    /// rows whose class column is `class_col`. Distributions and the
    /// default class are the exact expressions of `class_probs_into` /
    /// `predict_row`, evaluated once here, so compiled output is
    /// bit-identical (including `max_by_key`'s last-maximum default).
    pub(crate) fn lower(&self, class_col: usize) -> crate::compiled::CompiledRules {
        use crate::compiled::{push_laplace, CompiledRules};
        let k = self.n_classes;
        let mut conds = Vec::new();
        let mut bounds = Vec::with_capacity(self.rules.len() + 1);
        bounds.push(0u32);
        let mut probs = Vec::with_capacity((self.rules.len() + 1) * k);
        let mut preds = Vec::with_capacity(self.rules.len() + 1);
        for rule in &self.rules {
            for &(attr, value) in &rule.conds {
                let col = attr_index(attr, class_col);
                assert!(col < (1 << 24), "column index fits 24 bits");
                conds.push((col as u32) << 8 | u32::from(value));
            }
            // audit: allow(D006, reason = "condition count is bounded by the trained rule set size, far below u32::MAX")
            bounds.push(u32::try_from(conds.len()).expect("condition count fits u32"));
            push_laplace(&mut probs, &rule.counts, k);
            preds.push(rule.class);
        }
        push_laplace(&mut probs, &self.default_counts, k);
        preds.push(
            self.default_counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(i, _)| i as u8)
                .unwrap_or(0),
        );
        CompiledRules {
            conds,
            bounds,
            probs,
            preds,
            n_classes: k,
        }
    }
}

/// Whether `conds` all hold for row `i` of the columnar training view.
fn covers_at(conds: &[(usize, u8)], cols: &[&[u8]], i: usize) -> bool {
    conds.iter().all(|&(a, v)| cols[a][i] == v)
}

/// FOIL information gain of refining a rule from coverage `(p0, n0)` to
/// `(p1, n1)` (positives / negatives).
fn foil_gain(p0: f64, n0: f64, p1: f64, n1: f64) -> f64 {
    if p1 <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let i0 = (p0 / (p0 + n0)).log2();
    let i1 = (p1 / (p1 + n1)).log2();
    p1 * (i1 - i0)
}

/// Rule-value metric on the pruning set: `(p − n) / (p + n)`, Cohen's
/// IREP* pruning criterion.
fn prune_value(p: usize, n: usize) -> f64 {
    if p + n == 0 {
        // An uncovering rule is worthless but not actively harmful.
        -1.0
    } else {
        (p as f64 - n as f64) / (p + n) as f64
    }
}

struct ClassTrainer<'a> {
    /// Attribute columns (class column removed), borrowed from the table.
    cols: &'a [&'a [u8]],
    /// Class column, borrowed from the table.
    y: &'a [u8],
    attr_cards: &'a [usize],
    cfg: &'a Ripper,
    target: u8,
}

impl ClassTrainer<'_> {
    /// Grows one rule on `grow` (indices into `rows`), maximising FOIL gain.
    fn grow_rule(&self, grow: &[usize]) -> Vec<(usize, u8)> {
        let mut conds: Vec<(usize, u8)> = Vec::new();
        let mut covered: Vec<usize> = grow.to_vec();
        loop {
            let pos_count = covered
                .iter()
                .filter(|&&i| self.y[i] == self.target)
                .count();
            let neg_count = covered.len() - pos_count;
            if neg_count == 0 || conds.len() >= self.cfg.max_conds {
                break; // pure (or bounded): stop refining
            }
            let (p0, n0) = (pos_count as f64, neg_count as f64);
            // One counting pass over the covered rows computes (p, n) for
            // every (attribute, value) candidate simultaneously.
            let offsets: Vec<usize> = self
                .attr_cards
                .iter()
                .scan(0usize, |acc, &c| {
                    let o = *acc;
                    *acc += c;
                    Some(o)
                })
                .collect();
            let total: usize = self.attr_cards.iter().sum();
            let mut pos = vec![0u32; total];
            let mut neg = vec![0u32; total];
            for &i in &covered {
                let is_pos = self.y[i] == self.target;
                for (a, col) in self.cols.iter().enumerate() {
                    let slot = offsets[a] + col[i] as usize;
                    if is_pos {
                        pos[slot] += 1;
                    } else {
                        neg[slot] += 1;
                    }
                }
            }
            let mut best: Option<((usize, u8), f64)> = None;
            #[allow(clippy::needless_range_loop)] // a indexes conds/offsets/cards together
            for a in 0..self.attr_cards.len() {
                if conds.iter().any(|&(ca, _)| ca == a) {
                    continue;
                }
                for v in 0..self.attr_cards[a] as u8 {
                    let slot = offsets[a] + v as usize;
                    let gain = foil_gain(p0, n0, f64::from(pos[slot]), f64::from(neg[slot]));
                    if gain > best.map_or(1e-10, |b| b.1) {
                        best = Some(((a, v), gain));
                    }
                }
            }
            let Some(((a, v), _)) = best else { break };
            conds.push((a, v));
            let col = self.cols[a];
            covered.retain(|&i| col[i] == v);
        }
        conds
    }

    /// Greedily deletes trailing conditions while the prune-set value
    /// improves; returns the best prefix.
    fn prune_rule(&self, conds: Vec<(usize, u8)>, prune: &[usize]) -> Vec<(usize, u8)> {
        let value_of = |prefix: &[(usize, u8)]| {
            let (mut p, mut n) = (0usize, 0usize);
            for &i in prune {
                if covers_at(prefix, self.cols, i) {
                    if self.y[i] == self.target {
                        p += 1;
                    } else {
                        n += 1;
                    }
                }
            }
            prune_value(p, n)
        };
        let mut best_len = conds.len();
        let mut best_val = value_of(&conds);
        for len in (1..conds.len()).rev() {
            let val = value_of(&conds[..len]);
            if val >= best_val {
                best_val = val;
                best_len = len;
            }
        }
        let mut conds = conds;
        conds.truncate(best_len);
        conds
    }

    /// Accuracy of the rule on the pruning set (positives / covered).
    fn prune_accuracy(&self, conds: &[(usize, u8)], prune: &[usize]) -> f64 {
        let (mut p, mut n) = (0usize, 0usize);
        for &i in prune {
            if covers_at(conds, self.cols, i) {
                if self.y[i] == self.target {
                    p += 1;
                } else {
                    n += 1;
                }
            }
        }
        if p + n == 0 {
            0.0
        } else {
            p as f64 / (p + n) as f64
        }
    }
}

impl Learner for Ripper {
    type Model = RipperModel;

    fn fit(&self, table: &NominalTable, class_col: usize) -> RipperModel {
        assert!(class_col < table.n_cols(), "class column out of range");
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        let n_classes = table.cards()[class_col];
        let attr_cards: Vec<usize> = table
            .cards()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != class_col)
            .map(|(_, &c)| c)
            .collect();
        // Borrow columns straight out of the columnar table: no row
        // materialisation, every coverage test reads contiguous slices.
        let cols: Vec<&[u8]> = (0..attr_cards.len())
            .map(|a| table.col(attr_index(a, class_col)))
            .collect();
        let y = table.col(class_col);

        // Order classes rarest-first; the most frequent becomes the default.
        let mut class_freq = vec![0usize; n_classes];
        for &c in y {
            class_freq[c as usize] += 1;
        }
        let mut order: Vec<u8> = (0..n_classes as u8).collect();
        order.sort_by_key(|&c| (class_freq[c as usize], c));
        let ordered_targets = &order[..n_classes.saturating_sub(1)];

        let mut remaining: Vec<usize> = (0..table.n_rows()).collect();
        let mut rules: Vec<Rule> = Vec::new();
        let prune_every = (1.0 / self.prune_fraction.clamp(0.05, 0.95))
            .round()
            .max(2.0) as usize;

        for &target in ordered_targets {
            let trainer = ClassTrainer {
                cols: &cols,
                y,
                attr_cards: &attr_cards,
                cfg: self,
                target,
            };
            loop {
                let positives = remaining.iter().filter(|&&i| y[i] == target).count();
                if positives == 0 {
                    break;
                }
                // Stratified grow/prune split over a *shuffled* order
                // (seeded, so training stays deterministic). A purely
                // modular split can resonate with structured row order and
                // starve one set of whole feature patterns.
                let mut shuffled = remaining.clone();
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    self.seed ^ (rules.len() as u64) << 8 ^ target as u64,
                );
                shuffled.shuffle(&mut rng);
                shuffled.truncate(self.max_rule_rows.max(16));
                let (mut grow, mut prune) = (Vec::new(), Vec::new());
                let (mut kp, mut kn) = (0usize, 0usize);
                for &i in &shuffled {
                    let k = if y[i] == target {
                        kp += 1;
                        kp
                    } else {
                        kn += 1;
                        kn
                    };
                    if k % prune_every == 0 {
                        prune.push(i);
                    } else {
                        grow.push(i);
                    }
                }
                if prune.iter().all(|&i| y[i] != target) {
                    // Too few positives to hold any out: evaluate on grow.
                    prune = grow.clone();
                }
                let conds = trainer.grow_rule(&grow);
                if conds.is_empty() {
                    break;
                }
                let conds = trainer.prune_rule(conds, &prune);
                // Accept while better than chance on held-out data.
                if trainer.prune_accuracy(&conds, &prune) <= 0.5 {
                    break;
                }
                remaining.retain(|&i| !covers_at(&conds, &cols, i));
                rules.push(Rule {
                    conds,
                    class: target,
                    counts: vec![0; n_classes],
                });
            }
        }

        // Default distribution from leftover rows (global if none left).
        let mut default_counts = vec![0u32; n_classes];
        if remaining.is_empty() {
            for &c in y {
                default_counts[c as usize] += 1;
            }
        } else {
            for &i in &remaining {
                default_counts[y[i] as usize] += 1;
            }
        }

        // First-match coverage counts over the *full* training set, for
        // probability output.
        for (i, &truth) in y.iter().enumerate() {
            if let Some(rule) = rules.iter_mut().find(|r| covers_at(&r.conds, &cols, i)) {
                rule.counts[truth as usize] += 1;
            }
        }

        RipperModel {
            rules,
            default_counts,
            n_classes,
            n_attrs: attr_cards.len(),
        }
    }
}

impl Classifier for RipperModel {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
        check_row_width(row.len(), class_col, self.n_attrs);
        let counts = self
            .rules
            .iter()
            .find(|r| r.matches_row(row, class_col))
            .map(|r| &r.counts)
            .unwrap_or(&self.default_counts);
        let n: u32 = counts.iter().sum();
        let k = self.n_classes as f64;
        // Laplace smoothing; rules that captured nothing (possible after
        // pruning) fall back to uniform.
        out.clear();
        out.extend(counts.iter().map(|&c| (c as f64 + 1.0) / (n as f64 + k)));
    }

    fn predict_row(&self, row: &[u8], class_col: usize, _scratch: &mut Vec<f64>) -> u8 {
        check_row_width(row.len(), class_col, self.n_attrs);
        // First-match rule semantics: the rule's own class wins even if its
        // captured distribution is impure. (Overrides the default
        // probability-argmax path; `predict` routes through here too.)
        if let Some(r) = self.rules.iter().find(|r| r.matches_row(row, class_col)) {
            return r.class;
        }
        self.default_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i as u8)
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

use crate::persist::{write_vec_u32, Persist, PersistError, Reader, Writer};

impl Persist for RipperModel {
    fn write_into(&self, w: &mut Writer) {
        w.u32(u32::try_from(self.n_classes).expect("class count fits u32"));
        w.u32(u32::try_from(self.n_attrs).expect("attr count fits u32"));
        write_vec_u32(w, &self.default_counts);
        w.seq_len(self.rules.len());
        for rule in &self.rules {
            w.seq_len(rule.conds.len());
            for &(attr, val) in &rule.conds {
                w.u32(u32::try_from(attr).expect("attr index fits u32"));
                w.u8(val);
            }
            w.u8(rule.class);
            write_vec_u32(w, &rule.counts);
        }
    }

    fn read_from(r: &mut Reader) -> Result<Self, PersistError> {
        let n_classes = r.u32()? as usize;
        if n_classes == 0 || n_classes > 256 {
            return Err(PersistError::Malformed("RIPPER class count out of range"));
        }
        let n_attrs = r.u32()? as usize;
        let default_counts = r.vec_u32()?;
        if default_counts.len() != n_classes {
            return Err(PersistError::Malformed(
                "RIPPER default counts width mismatch",
            ));
        }
        let n_rules = r.seq_len(1)?;
        let mut rules = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let n_conds = r.seq_len(5)?;
            let mut conds = Vec::with_capacity(n_conds);
            for _ in 0..n_conds {
                let attr = r.u32()? as usize;
                if attr >= n_attrs {
                    return Err(PersistError::Malformed("RIPPER cond attr out of range"));
                }
                conds.push((attr, r.u8()?));
            }
            let class = r.u8()?;
            if usize::from(class) >= n_classes {
                return Err(PersistError::Malformed("RIPPER rule class out of range"));
            }
            let counts = r.vec_u32()?;
            if counts.len() != n_classes {
                return Err(PersistError::Malformed("RIPPER rule counts width mismatch"));
            }
            rules.push(Rule {
                conds,
                class,
                counts,
            });
        }
        Ok(RipperModel {
            rules,
            default_counts,
            n_classes,
            n_attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<Vec<u8>>, cards: Vec<usize>) -> NominalTable {
        let names = (0..cards.len()).map(|i| format!("f{i}")).collect();
        NominalTable::new(names, cards, rows).unwrap()
    }

    #[test]
    fn learns_a_simple_rule() {
        // class 1 iff attr0 == 2; class 1 is the minority.
        let mut rows = Vec::new();
        for _ in 0..10 {
            rows.push(vec![2, 0, 1]);
            rows.push(vec![0, 0, 0]);
            rows.push(vec![1, 1, 0]);
            rows.push(vec![0, 1, 0]);
        }
        let m = Ripper::default().fit(&table(rows, vec![3, 2, 2]), 2);
        assert_eq!(m.predict(&[2, 0]), 1);
        assert_eq!(m.predict(&[2, 1]), 1);
        assert_eq!(m.predict(&[0, 0]), 0);
        assert!(!m.rules().is_empty());
    }

    #[test]
    fn learns_conjunctions() {
        // class 1 iff a == 1 AND b == 1 (minority).
        let mut rows = Vec::new();
        for _ in 0..8 {
            for a in 0..2u8 {
                for b in 0..2u8 {
                    rows.push(vec![a, b, a & b]);
                }
            }
        }
        let m = Ripper::default().fit(&table(rows, vec![2, 2, 2]), 2);
        for a in 0..2u8 {
            for b in 0..2u8 {
                assert_eq!(m.predict(&[a, b]), a & b, "and({a},{b})");
            }
        }
    }

    #[test]
    fn probabilities_reflect_rule_purity() {
        let mut rows = Vec::new();
        for _ in 0..20 {
            rows.push(vec![1, 1]); // attr0=1 -> class 1, always
            rows.push(vec![0, 0]);
        }
        let m = Ripper::default().fit(&table(rows, vec![2, 2]), 1);
        let p = m.class_probs(&[1]);
        assert!(p[1] > 0.9, "pure rule should be confident: {p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_class_handles_uncovered_inputs() {
        let mut rows = Vec::new();
        for _ in 0..12 {
            rows.push(vec![2, 1]);
            rows.push(vec![0, 0]);
            rows.push(vec![1, 0]);
        }
        let m = Ripper::default().fit(&table(rows, vec![4, 2]), 1);
        // Value 3 never appears; falls through to the majority default.
        assert_eq!(m.predict(&[3]), 0);
    }

    #[test]
    fn multiclass_rulesets() {
        let mut rows = Vec::new();
        for _ in 0..10 {
            rows.push(vec![0, 0]);
            rows.push(vec![1, 1]);
            rows.push(vec![2, 2]);
            rows.push(vec![2, 2]); // class 2 most frequent -> default
        }
        let m = Ripper::default().fit(&table(rows, vec![3, 3]), 1);
        assert_eq!(m.predict(&[0]), 0);
        assert_eq!(m.predict(&[1]), 1);
        assert_eq!(m.predict(&[2]), 2);
    }

    #[test]
    fn noise_does_not_produce_worse_than_chance_rules() {
        // Pure noise: accuracy gate should keep the rule list small and the
        // model close to the prior.
        let rows: Vec<Vec<u8>> = (0..200u32)
            .map(|i| vec![(i * 7 % 5) as u8, (i * 13 % 3) as u8, (i % 2) as u8])
            .collect();
        let m = Ripper::default().fit(&table(rows, vec![5, 3, 2]), 2);
        // Rule list should not explode on noise.
        assert!(m.rules().len() <= 6, "got {} rules", m.rules().len());
    }

    #[test]
    fn foil_gain_prefers_purer_refinements() {
        let base = foil_gain(10.0, 10.0, 5.0, 0.0);
        let worse = foil_gain(10.0, 10.0, 5.0, 5.0);
        assert!(base > worse);
        assert_eq!(foil_gain(10.0, 10.0, 0.0, 5.0), f64::NEG_INFINITY);
    }
}
