//! Nominal datasets.

use std::fmt;

/// Error building or manipulating a [`NominalTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `names` and `cards` lengths differ.
    ShapeMismatch {
        /// Number of column names supplied.
        names: usize,
        /// Number of cardinalities supplied.
        cards: usize,
    },
    /// A row's length differs from the number of columns.
    RowLength {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected length.
        expected: usize,
    },
    /// A value exceeds its column's declared cardinality.
    ValueOutOfRange {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// The offending value.
        value: u8,
        /// The column's cardinality.
        card: usize,
    },
    /// A column has cardinality zero (no possible values).
    EmptyDomain {
        /// Column index.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ShapeMismatch { names, cards } => {
                write!(f, "got {names} column names but {cards} cardinalities")
            }
            DatasetError::RowLength { row, len, expected } => {
                write!(f, "row {row} has {len} values, expected {expected}")
            }
            DatasetError::ValueOutOfRange {
                row,
                col,
                value,
                card,
            } => write!(
                f,
                "row {row}, column {col}: value {value} outside domain of size {card}"
            ),
            DatasetError::EmptyDomain { col } => {
                write!(f, "column {col} has an empty value domain")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dataset of discrete (nominal) attributes: named columns with finite
/// value domains `0..card`, and rows of `u8` values.
///
/// This is the common currency between feature extraction, the learners in
/// this crate and the cross-feature combiner.
#[derive(Debug, Clone, PartialEq)]
pub struct NominalTable {
    names: Vec<String>,
    cards: Vec<usize>,
    rows: Vec<Vec<u8>>,
}

impl NominalTable {
    /// Builds a validated table.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if shapes disagree, any value falls
    /// outside its column's domain, or a domain is empty.
    pub fn new(
        names: Vec<String>,
        cards: Vec<usize>,
        rows: Vec<Vec<u8>>,
    ) -> Result<NominalTable, DatasetError> {
        if names.len() != cards.len() {
            return Err(DatasetError::ShapeMismatch {
                names: names.len(),
                cards: cards.len(),
            });
        }
        for (col, &card) in cards.iter().enumerate() {
            if card == 0 {
                return Err(DatasetError::EmptyDomain { col });
            }
        }
        for (r, row) in rows.iter().enumerate() {
            if row.len() != names.len() {
                return Err(DatasetError::RowLength {
                    row: r,
                    len: row.len(),
                    expected: names.len(),
                });
            }
            for (c, (&v, &card)) in row.iter().zip(&cards).enumerate() {
                if v as usize >= card {
                    return Err(DatasetError::ValueOutOfRange {
                        row: r,
                        col: c,
                        value: v,
                        card,
                    });
                }
            }
        }
        Ok(NominalTable { names, cards, rows })
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column cardinalities (domain sizes).
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<u8>] {
        &self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// A single row's attribute vector with column `class_col` removed —
    /// the shape learners' models expect at prediction time.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `class_col` is out of range.
    pub fn attrs_without(&self, row: usize, class_col: usize) -> Vec<u8> {
        let r = &self.rows[row];
        assert!(class_col < r.len(), "class column out of range");
        let mut v = Vec::with_capacity(r.len() - 1);
        v.extend_from_slice(&r[..class_col]);
        v.extend_from_slice(&r[class_col + 1..]);
        v
    }

    /// Splits an arbitrary full-width row into `(attrs, class)` for a given
    /// class column (helper mirroring [`NominalTable::attrs_without`] for
    /// rows not stored in the table).
    ///
    /// # Panics
    ///
    /// Panics if `class_col >= row.len()`.
    pub fn split_row(row: &[u8], class_col: usize) -> (Vec<u8>, u8) {
        assert!(class_col < row.len(), "class column out of range");
        let mut attrs = Vec::with_capacity(row.len() - 1);
        attrs.extend_from_slice(&row[..class_col]);
        attrs.extend_from_slice(&row[class_col + 1..]);
        (attrs, row[class_col])
    }

    /// Appends a validated row.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] on shape or domain violations.
    pub fn push_row(&mut self, row: Vec<u8>) -> Result<(), DatasetError> {
        if row.len() != self.names.len() {
            return Err(DatasetError::RowLength {
                row: self.rows.len(),
                len: row.len(),
                expected: self.names.len(),
            });
        }
        for (c, (&v, &card)) in row.iter().zip(&self.cards).enumerate() {
            if v as usize >= card {
                return Err(DatasetError::ValueOutOfRange {
                    row: self.rows.len(),
                    col: c,
                    value: v,
                    card,
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// A table with the same schema but only the selected rows (by index).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> NominalTable {
        NominalTable {
            names: self.names.clone(),
            cards: self.cards.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn builds_valid_table() {
        let t = NominalTable::new(names(3), vec![2, 3, 2], vec![vec![1, 2, 0]]).unwrap();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn rejects_out_of_domain_values() {
        let err = NominalTable::new(names(2), vec![2, 2], vec![vec![0, 2]]).unwrap_err();
        assert!(matches!(err, DatasetError::ValueOutOfRange { col: 1, value: 2, .. }));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = NominalTable::new(names(2), vec![2, 2], vec![vec![0]]).unwrap_err();
        assert!(matches!(err, DatasetError::RowLength { .. }));
    }

    #[test]
    fn rejects_shape_mismatch_and_empty_domains() {
        assert!(matches!(
            NominalTable::new(names(2), vec![2], vec![]).unwrap_err(),
            DatasetError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            NominalTable::new(names(1), vec![0], vec![]).unwrap_err(),
            DatasetError::EmptyDomain { col: 0 }
        ));
    }

    #[test]
    fn attrs_without_removes_class_column() {
        let t = NominalTable::new(names(3), vec![4, 4, 4], vec![vec![1, 2, 3]]).unwrap();
        assert_eq!(t.attrs_without(0, 1), vec![1, 3]);
        assert_eq!(NominalTable::split_row(&[1, 2, 3], 0), (vec![2, 3], 1));
    }

    #[test]
    fn push_row_validates() {
        let mut t = NominalTable::new(names(2), vec![2, 2], vec![]).unwrap();
        assert!(t.push_row(vec![1, 1]).is_ok());
        assert!(t.push_row(vec![1, 2]).is_err());
        assert!(t.push_row(vec![1]).is_err());
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn select_rows_subsets() {
        let t = NominalTable::new(
            names(1),
            vec![5],
            vec![vec![0], vec![1], vec![2], vec![3]],
        )
        .unwrap();
        let s = t.select_rows(&[3, 1]);
        assert_eq!(s.rows(), &[vec![3], vec![1]]);
    }

    #[test]
    fn error_display_is_informative() {
        let err = NominalTable::new(names(2), vec![2], vec![]).unwrap_err();
        assert!(err.to_string().contains("2 column names"));
    }
}
