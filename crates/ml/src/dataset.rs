//! Nominal datasets, stored column-major.
//!
//! [`NominalTable`] keeps one contiguous `Vec<u8>` per column. The learners
//! in this crate are counting machines — every training pass walks a few
//! columns end to end — so the columnar layout turns their inner loops into
//! linear scans over contiguous memory instead of strided hops across
//! row `Vec`s. Row-shaped access is still available where it is needed
//! (scoring events, tests) through [`NominalTable::copy_row_into`] and
//! friends.

use std::fmt;

/// Error building or manipulating a [`NominalTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `names` and `cards` lengths differ.
    ShapeMismatch {
        /// Number of column names supplied.
        names: usize,
        /// Number of cardinalities supplied.
        cards: usize,
    },
    /// A row's length differs from the number of columns.
    RowLength {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected length.
        expected: usize,
    },
    /// A column's length differs from the others (column-major input).
    ColumnLength {
        /// Index of the offending column.
        col: usize,
        /// Its length.
        len: usize,
        /// The expected length.
        expected: usize,
    },
    /// A value exceeds its column's declared cardinality.
    ValueOutOfRange {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// The offending value.
        value: u8,
        /// The column's cardinality.
        card: usize,
    },
    /// A column has cardinality zero (no possible values).
    EmptyDomain {
        /// Column index.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ShapeMismatch { names, cards } => {
                write!(f, "got {names} column names but {cards} cardinalities")
            }
            DatasetError::RowLength { row, len, expected } => {
                write!(f, "row {row} has {len} values, expected {expected}")
            }
            DatasetError::ColumnLength { col, len, expected } => {
                write!(f, "column {col} has {len} values, expected {expected}")
            }
            DatasetError::ValueOutOfRange {
                row,
                col,
                value,
                card,
            } => write!(
                f,
                "row {row}, column {col}: value {value} outside domain of size {card}"
            ),
            DatasetError::EmptyDomain { col } => {
                write!(f, "column {col} has an empty value domain")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dataset of discrete (nominal) attributes: named columns with finite
/// value domains `0..card`, stored as one contiguous `Vec<u8>` per column.
///
/// This is the common currency between feature extraction, the learners in
/// this crate and the cross-feature combiner.
#[derive(Debug, Clone, PartialEq)]
pub struct NominalTable {
    names: Vec<String>,
    cards: Vec<usize>,
    n_rows: usize,
    /// `cols[c][r]` is the value of column `c` in row `r`.
    cols: Vec<Vec<u8>>,
}

impl NominalTable {
    /// Builds a validated table from row-major data.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if shapes disagree, any value falls
    /// outside its column's domain, or a domain is empty.
    pub fn new(
        names: Vec<String>,
        cards: Vec<usize>,
        rows: Vec<Vec<u8>>,
    ) -> Result<NominalTable, DatasetError> {
        if names.len() != cards.len() {
            return Err(DatasetError::ShapeMismatch {
                names: names.len(),
                cards: cards.len(),
            });
        }
        for (col, &card) in cards.iter().enumerate() {
            if card == 0 {
                return Err(DatasetError::EmptyDomain { col });
            }
        }
        let n_rows = rows.len();
        let mut cols: Vec<Vec<u8>> = cards.iter().map(|_| Vec::with_capacity(n_rows)).collect();
        for (r, row) in rows.iter().enumerate() {
            if row.len() != names.len() {
                return Err(DatasetError::RowLength {
                    row: r,
                    len: row.len(),
                    expected: names.len(),
                });
            }
            for (c, (&v, &card)) in row.iter().zip(&cards).enumerate() {
                if v as usize >= card {
                    return Err(DatasetError::ValueOutOfRange {
                        row: r,
                        col: c,
                        value: v,
                        card,
                    });
                }
                cols[c].push(v);
            }
        }
        Ok(NominalTable {
            names,
            cards,
            n_rows,
            cols,
        })
    }

    /// Builds a validated table directly from column-major data, avoiding
    /// the row-major transpose entirely.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if shapes disagree, column lengths
    /// differ, any value falls outside its column's domain, or a domain is
    /// empty.
    pub fn from_columns(
        names: Vec<String>,
        cards: Vec<usize>,
        cols: Vec<Vec<u8>>,
    ) -> Result<NominalTable, DatasetError> {
        if names.len() != cards.len() || names.len() != cols.len() {
            return Err(DatasetError::ShapeMismatch {
                names: names.len(),
                cards: cards.len(),
            });
        }
        for (col, &card) in cards.iter().enumerate() {
            if card == 0 {
                return Err(DatasetError::EmptyDomain { col });
            }
        }
        let n_rows = cols.first().map_or(0, Vec::len);
        for (c, (col, &card)) in cols.iter().zip(&cards).enumerate() {
            if col.len() != n_rows {
                return Err(DatasetError::ColumnLength {
                    col: c,
                    len: col.len(),
                    expected: n_rows,
                });
            }
            for (r, &v) in col.iter().enumerate() {
                if v as usize >= card {
                    return Err(DatasetError::ValueOutOfRange {
                        row: r,
                        col: c,
                        value: v,
                        card,
                    });
                }
            }
        }
        Ok(NominalTable {
            names,
            cards,
            n_rows,
            cols,
        })
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column cardinalities (domain sizes).
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// One column as a contiguous slice — the learners' training currency.
    /// An out-of-range `col` yields an empty slice, so the training path
    /// stays panic-free on a malformed column index.
    pub fn col(&self, col: usize) -> &[u8] {
        self.cols.get(col).map_or(&[], Vec::as_slice)
    }

    /// A single cell.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn value(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.n_rows, "row out of range");
        self.cols[col][row]
    }

    /// Gathers row `row` into `buf` (cleared first), reusing its capacity.
    /// The zero-alloc row view for batch scoring loops.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn copy_row_into(&self, row: usize, buf: &mut Vec<u8>) {
        assert!(row < self.n_rows, "row out of range");
        buf.clear();
        // Every column holds exactly n_rows values (checked at
        // construction), so the filter_map drops nothing — it only
        // replaces the panicking index with a total lookup.
        buf.extend(self.cols.iter().filter_map(|c| c.get(row)));
    }

    /// Row `row` as a freshly allocated `Vec` (tests, examples).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_vec(&self, row: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.n_cols());
        self.copy_row_into(row, &mut buf);
        buf
    }

    /// Materialises the whole table row-major. Intended for tests and
    /// interop; hot paths should iterate [`NominalTable::col`] or use
    /// [`NominalTable::copy_row_into`].
    pub fn to_rows(&self) -> Vec<Vec<u8>> {
        (0..self.n_rows).map(|r| self.row_vec(r)).collect()
    }

    /// The single row-splitting implementation: copies `row` minus its
    /// `class_col` entry into `attrs_out` (cleared first) and returns the
    /// class value. Non-allocating when `attrs_out` has capacity.
    ///
    /// # Panics
    ///
    /// Panics if `class_col >= row.len()`.
    pub fn split_row_into(row: &[u8], class_col: usize, attrs_out: &mut Vec<u8>) -> u8 {
        assert!(class_col < row.len(), "class column out of range");
        attrs_out.clear();
        attrs_out.extend_from_slice(&row[..class_col]);
        attrs_out.extend_from_slice(&row[class_col + 1..]);
        row[class_col]
    }

    /// Appends a validated row.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] on shape or domain violations.
    pub fn push_row(&mut self, row: Vec<u8>) -> Result<(), DatasetError> {
        if row.len() != self.names.len() {
            return Err(DatasetError::RowLength {
                row: self.n_rows,
                len: row.len(),
                expected: self.names.len(),
            });
        }
        for (c, (&v, &card)) in row.iter().zip(&self.cards).enumerate() {
            if v as usize >= card {
                return Err(DatasetError::ValueOutOfRange {
                    row: self.n_rows,
                    col: c,
                    value: v,
                    card,
                });
            }
        }
        for (c, &v) in row.iter().enumerate() {
            self.cols[c].push(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// A table with the same schema but only the selected rows (by index).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> NominalTable {
        for &i in indices {
            assert!(i < self.n_rows, "row index {i} out of range");
        }
        NominalTable {
            names: self.names.clone(),
            cards: self.cards.clone(),
            n_rows: indices.len(),
            cols: self
                .cols
                .iter()
                .map(|col| indices.iter().map(|&i| col[i]).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn builds_valid_table() {
        let t = NominalTable::new(names(3), vec![2, 3, 2], vec![vec![1, 2, 0]]).unwrap();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn rejects_out_of_domain_values() {
        let err = NominalTable::new(names(2), vec![2, 2], vec![vec![0, 2]]).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::ValueOutOfRange {
                col: 1,
                value: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = NominalTable::new(names(2), vec![2, 2], vec![vec![0]]).unwrap_err();
        assert!(matches!(err, DatasetError::RowLength { .. }));
    }

    #[test]
    fn rejects_shape_mismatch_and_empty_domains() {
        assert!(matches!(
            NominalTable::new(names(2), vec![2], vec![]).unwrap_err(),
            DatasetError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            NominalTable::new(names(1), vec![0], vec![]).unwrap_err(),
            DatasetError::EmptyDomain { col: 0 }
        ));
    }

    #[test]
    fn storage_is_columnar_with_row_views() {
        let t = NominalTable::new(
            names(3),
            vec![4, 4, 4],
            vec![vec![0, 1, 2], vec![3, 2, 1], vec![1, 1, 1]],
        )
        .unwrap();
        assert_eq!(t.col(0), &[0, 3, 1]);
        assert_eq!(t.col(2), &[2, 1, 1]);
        assert_eq!(t.value(1, 0), 3);
        assert_eq!(t.row_vec(1), vec![3, 2, 1]);
        let mut buf = Vec::new();
        t.copy_row_into(2, &mut buf);
        assert_eq!(buf, vec![1, 1, 1]);
        assert_eq!(
            t.to_rows(),
            vec![vec![0, 1, 2], vec![3, 2, 1], vec![1, 1, 1]]
        );
    }

    #[test]
    fn from_columns_round_trips() {
        let t =
            NominalTable::from_columns(names(2), vec![4, 4], vec![vec![0, 1, 2], vec![3, 2, 1]])
                .unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.to_rows(), vec![vec![0, 3], vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn from_columns_rejects_bad_shapes() {
        assert!(matches!(
            NominalTable::from_columns(names(2), vec![2, 2], vec![vec![0, 1], vec![0]])
                .unwrap_err(),
            DatasetError::ColumnLength {
                col: 1,
                len: 1,
                expected: 2
            }
        ));
        assert!(matches!(
            NominalTable::from_columns(names(2), vec![2, 2], vec![vec![0, 2], vec![0, 0]])
                .unwrap_err(),
            DatasetError::ValueOutOfRange {
                row: 1,
                col: 0,
                value: 2,
                ..
            }
        ));
        assert!(matches!(
            NominalTable::from_columns(names(2), vec![2, 2], vec![vec![]]).unwrap_err(),
            DatasetError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn split_row_into_reuses_the_buffer() {
        let mut buf = Vec::with_capacity(2);
        let y = NominalTable::split_row_into(&[1, 2, 3], 1, &mut buf);
        assert_eq!((buf.as_slice(), y), ([1, 3].as_slice(), 2));
        let ptr = buf.as_ptr();
        let y = NominalTable::split_row_into(&[4, 5, 6], 2, &mut buf);
        assert_eq!((buf.as_slice(), y), ([4, 5].as_slice(), 6));
        assert_eq!(ptr, buf.as_ptr(), "no reallocation on reuse");
    }

    #[test]
    fn push_row_validates() {
        let mut t = NominalTable::new(names(2), vec![2, 2], vec![]).unwrap();
        assert!(t.push_row(vec![1, 1]).is_ok());
        assert!(t.push_row(vec![1, 2]).is_err());
        assert!(t.push_row(vec![1]).is_err());
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.col(0), &[1]);
        assert_eq!(t.col(1), &[1], "failed pushes must not half-append");
    }

    #[test]
    fn select_rows_subsets() {
        let t =
            NominalTable::new(names(1), vec![5], vec![vec![0], vec![1], vec![2], vec![3]]).unwrap();
        let s = t.select_rows(&[3, 1]);
        assert_eq!(s.to_rows(), vec![vec![3], vec![1]]);
    }

    #[test]
    fn error_display_is_informative() {
        let err = NominalTable::new(names(2), vec![2], vec![]).unwrap_err();
        assert!(err.to_string().contains("2 column names"));
        let err = NominalTable::from_columns(names(1), vec![2], vec![vec![0], vec![0]])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, DatasetError::ShapeMismatch { .. }));
    }
}
