//! Categorical naive Bayes.
//!
//! Implements exactly the probability model the paper quotes for NBC:
//! score `n(ℓᵢ|x) = p(ℓᵢ) ∏ⱼ p(aⱼ|ℓᵢ)` normalised to
//! `p(ℓᵢ|x) = n(ℓᵢ|x) / Σₖ n(ℓₖ|x)`, with Laplace smoothing of the
//! per-attribute conditionals so unseen attribute values never zero out a
//! class.

use crate::dataset::NominalTable;
use crate::{attr_index, check_row_width, Classifier, Learner};

/// The naive Bayes learning algorithm (stateless; configuration lives in
/// the smoothing constant).
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// Additive (Laplace) smoothing constant.
    pub alpha: f64,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        NaiveBayes { alpha: 1.0 }
    }
}

/// A fitted naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    n_classes: usize,
    /// Log prior per class.
    log_prior: Vec<f64>,
    /// `log_cond[attr][class * card + value]` = log p(value | class).
    log_cond: Vec<Vec<f64>>,
    /// Cardinality per attribute (class column removed).
    attr_cards: Vec<usize>,
}

impl Learner for NaiveBayes {
    type Model = NaiveBayesModel;

    fn fit(&self, table: &NominalTable, class_col: usize) -> NaiveBayesModel {
        assert!(class_col < table.n_cols(), "class column out of range");
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        let n_classes = table.cards().get(class_col).copied().unwrap_or(0);
        let attr_cards: Vec<usize> = table
            .cards()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != class_col)
            .map(|(_, &c)| c)
            .collect();
        let n = table.n_rows() as f64;
        let alpha = self.alpha.max(1e-12);

        // Counting is one linear scan per column: the class column once for
        // the priors, then each attribute column zipped against it.
        // Counting stays panic-free under malformed values: a value past
        // its declared cardinality is dropped rather than indexed.
        let y = table.col(class_col);
        // audit: allow(D012, reason = "conservative dispatch false positive: the serve read loop's buf.get_mut(filled..) binds to every workspace get_mut, smearing network taint onto cards().get(); n_classes comes from the table's declared cardinalities, not wire bytes")
        let mut class_counts = vec![0usize; n_classes];
        for &c in y {
            if let Some(slot) = class_counts.get_mut(c as usize) {
                *slot += 1;
            }
        }
        let cond_counts: Vec<Vec<usize>> = attr_cards
            .iter()
            .enumerate()
            .map(|(a, &card)| {
                let col = table.col(attr_index(a, class_col));
                // audit: allow(D012, reason = "same conservative-dispatch chain as class_counts above; card and n_classes are validated table cardinalities")
                let mut counts = vec![0usize; n_classes * card];
                for (&v, &c) in col.iter().zip(y) {
                    if let Some(slot) = counts.get_mut(c as usize * card + v as usize) {
                        *slot += 1;
                    }
                }
                counts
            })
            .collect();
        let log_prior = class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / (n + alpha * n_classes as f64)).ln())
            .collect();
        let log_cond = cond_counts
            .iter()
            .zip(&attr_cards)
            .map(|(counts, &card)| {
                counts
                    .iter()
                    .enumerate()
                    .map(|(idx, &cnt)| {
                        // counts.len() == n_classes * card, so idx / card
                        // is the class this cell conditions on.
                        let class_n = class_counts.get(idx / card).copied().unwrap_or(0) as f64;
                        ((cnt as f64 + alpha) / (class_n + alpha * card as f64)).ln()
                    })
                    .collect()
            })
            .collect();
        NaiveBayesModel {
            n_classes,
            log_prior,
            log_cond,
            attr_cards,
        }
    }
}

impl NaiveBayesModel {
    /// Number of attributes the model conditions on (class column removed).
    pub(crate) fn n_attrs(&self) -> usize {
        self.attr_cards.len()
    }

    /// Lowers the model into its value-major compiled form for full-width
    /// rows whose class column is `class_col`. The table entries are the
    /// trained log-conditionals verbatim (only re-laid-out), so the
    /// compiled accumulation adds the same values in the same order and
    /// the scores are bit-identical.
    pub(crate) fn lower(&self, class_col: usize) -> crate::compiled::CompiledBayes {
        use crate::compiled::{clamp_for, BayesAttr, CompiledBayes};
        let k = self.n_classes;
        let mut table = Vec::new();
        let mut attrs = Vec::with_capacity(self.attr_cards.len());
        for (a, &card) in self.attr_cards.iter().enumerate() {
            // Row bytes clamp to min(card - 1, 255): values past 255 are
            // unreachable, so their columns need no storage.
            let stored = card.min(256);
            // audit: allow(D006, reason = "table length is bounded by cards × classes of a trained model, far below u32::MAX")
            let offset = u32::try_from(table.len()).expect("table offset fits u32");
            for v in 0..stored {
                for class in 0..k {
                    // audit: allow(D006, reason = "a and class*card+v enumerate the trained log_cond layout, in range by construction")
                    table.push(self.log_cond[a][class * card + v]);
                }
            }
            attrs.push(BayesAttr {
                // audit: allow(D006, reason = "column index is bounded by the feature schema width, far below u32::MAX")
                col: u32::try_from(attr_index(a, class_col)).expect("column index fits u32"),
                clamp: clamp_for(card),
                offset,
            });
        }
        CompiledBayes {
            log_prior: self.log_prior.clone(),
            table,
            attrs,
            n_classes: k,
        }
    }
}

impl Classifier for NaiveBayesModel {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
        check_row_width(row.len(), class_col, self.attr_cards.len());
        out.clear();
        out.extend_from_slice(&self.log_prior);
        for (a, (table, &card)) in self.log_cond.iter().zip(&self.attr_cards).enumerate() {
            if card == 0 {
                continue;
            }
            let v = row.get(attr_index(a, class_col)).copied().unwrap_or(0);
            // Clamp unseen (out-of-domain) values to the last bucket.
            let v = (v as usize).min(card - 1);
            // The table is class-major (`class * card + v`), so each
            // card-wide chunk is one class's conditionals.
            for (score, cond) in out.iter_mut().zip(table.chunks_exact(card)) {
                *score += cond.get(v).copied().unwrap_or(0.0);
            }
        }
        // Softmax-normalise in a numerically stable way.
        let max = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in out.iter_mut() {
            *s = (*s - max).exp();
        }
        let sum: f64 = out.iter().sum();
        for p in out.iter_mut() {
            *p /= sum;
        }
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

use crate::persist::{
    read_vec_usize, write_vec_f64, write_vec_usize, Persist, PersistError, Reader, Writer,
};

impl Persist for NaiveBayesModel {
    fn write_into(&self, w: &mut Writer) {
        w.u32(u32::try_from(self.n_classes).expect("class count fits u32"));
        write_vec_f64(w, &self.log_prior);
        write_vec_usize(w, &self.attr_cards);
        w.seq_len(self.log_cond.len());
        for table in &self.log_cond {
            write_vec_f64(w, table);
        }
    }

    fn read_from(r: &mut Reader) -> Result<Self, PersistError> {
        let n_classes = r.u32()? as usize;
        if n_classes == 0 || n_classes > 256 {
            return Err(PersistError::Malformed(
                "naive Bayes class count out of range",
            ));
        }
        let log_prior = r.vec_f64()?;
        if log_prior.len() != n_classes {
            return Err(PersistError::Malformed("naive Bayes prior width mismatch"));
        }
        let attr_cards = read_vec_usize(r)?;
        let n_attrs = r.seq_len(4)?;
        if n_attrs != attr_cards.len() {
            return Err(PersistError::Malformed(
                "naive Bayes conditional table count != attr count",
            ));
        }
        let mut log_cond = Vec::with_capacity(n_attrs);
        for card in &attr_cards {
            let table = r.vec_f64()?;
            if table.len() != n_classes * card {
                return Err(PersistError::Malformed(
                    "naive Bayes conditional table size mismatch",
                ));
            }
            log_cond.push(table);
        }
        Ok(NaiveBayesModel {
            n_classes,
            log_prior,
            log_cond,
            attr_cards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<Vec<u8>>, cards: Vec<usize>) -> NominalTable {
        let names = (0..cards.len()).map(|i| format!("f{i}")).collect();
        NominalTable::new(names, cards, rows).unwrap()
    }

    #[test]
    fn learns_a_deterministic_mapping() {
        // class == attr0.
        let t = table(
            vec![vec![0, 0], vec![0, 0], vec![1, 1], vec![1, 1]],
            vec![2, 2],
        );
        let m = NaiveBayes::default().fit(&t, 1);
        assert_eq!(m.predict(&[0]), 0);
        assert_eq!(m.predict(&[1]), 1);
        // With Laplace alpha=1 on 4 rows the posterior is exactly 0.75.
        assert!((m.prob_of(&[1], 1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn probs_sum_to_one() {
        let t = table(
            vec![vec![0, 1, 0], vec![1, 0, 1], vec![0, 0, 1], vec![1, 1, 0]],
            vec![2, 2, 2],
        );
        let m = NaiveBayes::default().fit(&t, 2);
        for x in [[0, 0], [0, 1], [1, 0], [1, 1]] {
            let p = m.class_probs(&x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v > 0.0), "smoothing keeps probs positive");
        }
    }

    #[test]
    fn respects_class_priors() {
        // 3:1 prior for class 0, attribute carries no information.
        let t = table(
            vec![vec![0, 0], vec![0, 0], vec![0, 0], vec![0, 1]],
            vec![1, 2],
        );
        let m = NaiveBayes::default().fit(&t, 1);
        let p = m.class_probs(&[0]);
        assert!(p[0] > p[1]);
    }

    #[test]
    fn unseen_values_are_handled_via_smoothing() {
        let t = table(vec![vec![0, 0], vec![1, 1]], vec![3, 2]);
        let m = NaiveBayes::default().fit(&t, 1);
        // Value 2 never appeared in training.
        let p = m.class_probs(&[2]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_output() {
        let t = table(
            vec![
                vec![0, 0],
                vec![1, 1],
                vec![2, 2],
                vec![0, 0],
                vec![1, 1],
                vec![2, 2],
            ],
            vec![3, 3],
        );
        let m = NaiveBayes::default().fit(&t, 1);
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.predict(&[2]), 2);
    }

    #[test]
    fn full_row_and_bare_attr_paths_agree_bitwise() {
        let t = table(
            vec![
                vec![0, 1, 0],
                vec![1, 0, 1],
                vec![0, 0, 1],
                vec![1, 1, 0],
                vec![1, 1, 1],
            ],
            vec![2, 2, 2],
        );
        for class_col in 0..3 {
            let m = NaiveBayes::default().fit(&t, class_col);
            let mut out = Vec::new();
            for r in 0..t.n_rows() {
                let full = t.row_vec(r);
                let mut attrs = Vec::new();
                NominalTable::split_row_into(&full, class_col, &mut attrs);
                m.class_probs_into(&full, class_col, &mut out);
                assert_eq!(out, m.class_probs(&attrs), "row {r}, class_col {class_col}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn rejects_empty_training_set() {
        let t = table(vec![], vec![2, 2]);
        let _ = NaiveBayes::default().fit(&t, 1);
    }
}
