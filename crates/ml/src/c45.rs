//! A C4.5-style decision-tree learner.
//!
//! Follows Quinlan's recipe for nominal attributes:
//!
//! * multiway splits (one branch per attribute value);
//! * split selection by **gain ratio**, restricted — as in C4.5 — to
//!   attributes whose information gain is at least the average positive
//!   gain;
//! * **pessimistic-error pruning**: a subtree is replaced by a leaf when
//!   the leaf's upper-confidence-bound error (Wilson bound at the
//!   configured confidence, C4.5's default 0.25) does not exceed the sum
//!   of its leaves' bounds;
//! * leaves expose Laplace-smoothed class frequencies, which is the
//!   `p(ℓᵢ|x) = nᵢ/n` probability rule the paper describes (smoothed so
//!   probabilities are never exactly 0 or 1 on tiny leaves).

use crate::dataset::NominalTable;
use crate::{attr_index, check_row_width, Classifier, Learner};

/// Configuration for the C4.5 learner.
#[derive(Debug, Clone)]
pub struct C45 {
    /// Minimum number of rows in at least two branches for a split to be
    /// considered (C4.5's `-m`, default 2).
    pub min_leaf: usize,
    /// Pruning confidence factor (C4.5's `-c`, default 0.25). Smaller
    /// prunes more aggressively.
    pub confidence: f64,
    /// Hard depth cap (guards against adversarial data).
    pub max_depth: usize,
}

impl Default for C45 {
    fn default() -> Self {
        C45 {
            min_leaf: 2,
            confidence: 0.25,
            max_depth: 40,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        counts: Vec<u32>,
    },
    Split {
        attr: usize,
        /// One child per attribute value; `usize::MAX` marks an empty
        /// branch that falls back to this node's own distribution.
        children: Vec<usize>,
        counts: Vec<u32>,
    },
}

/// A fitted C4.5 decision tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct C45Model {
    nodes: Vec<Node>,
    root: usize,
    n_classes: usize,
    attr_cards: Vec<usize>,
}

impl C45Model {
    /// Number of nodes in the tree (diagnostics).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of attributes the tree can test (class column removed).
    pub(crate) fn n_attrs(&self) -> usize {
        self.attr_cards.len()
    }

    /// Lowers the tree into its flat compiled form for full-width rows
    /// whose class column is `class_col`. Per-node distributions are the
    /// exact Laplace expression of `class_probs_into`, evaluated once
    /// here, so compiled probabilities are bit-identical.
    pub(crate) fn lower(&self, class_col: usize) -> crate::compiled::CompiledTree {
        use crate::compiled::{clamp_for, push_laplace, CompiledTree, TreeNode, LEAF_COL, NO_NODE};
        let k = self.n_classes;
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut children_pool = Vec::new();
        let mut probs = Vec::with_capacity(self.nodes.len() * k);
        let mut preds = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let counts = match node {
                Node::Leaf { counts } => {
                    nodes.push(TreeNode {
                        col: LEAF_COL,
                        clamp: 0,
                        children_at: 0,
                    });
                    counts
                }
                Node::Split {
                    attr,
                    children,
                    counts,
                } => {
                    let children_at =
                        // audit: allow(D006, reason = "pool length is bounded by the trained tree size, far below u32::MAX")
                        u32::try_from(children_pool.len()).expect("child pool fits u32");
                    children_pool.extend(children.iter().map(|&c| {
                        if c == usize::MAX {
                            NO_NODE
                        } else {
                            // audit: allow(D006, reason = "node indices are bounded by the trained tree size, far below u32::MAX")
                            u32::try_from(c).expect("node index fits u32")
                        }
                    }));
                    nodes.push(TreeNode {
                        col: u32::try_from(attr_index(*attr, class_col))
                            // audit: allow(D006, reason = "column index is bounded by the feature schema width, far below u32::MAX")
                            .expect("column index fits u32"),
                        // audit: allow(D006, reason = "attr came from enumerating attr_cards, so the index is in range by construction")
                        clamp: clamp_for(self.attr_cards[*attr]),
                        children_at,
                    });
                    counts
                }
            };
            push_laplace(&mut probs, counts, k);
            // audit: allow(D006, reason = "push_laplace just appended k entries, so the probs slice tail is in range")
            preds.push(crate::argmax_last(&probs[probs.len() - k..]));
        }
        CompiledTree {
            nodes,
            children: children_pool,
            probs,
            preds,
            // audit: allow(D006, reason = "the root index is bounded by the trained tree size, far below u32::MAX")
            root: u32::try_from(self.root).expect("node index fits u32"),
            n_classes: k,
        }
    }

    /// Depth of the tree (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => {
                    1 + children
                        .iter()
                        .filter(|&&c| c != usize::MAX)
                        .map(|&c| rec(nodes, c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        rec(&self.nodes, self.root)
    }
}

fn entropy(counts: &[u32]) -> f64 {
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = f64::from(total);
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Wilson upper confidence bound on the error rate, C4.5's pessimistic
/// error estimate. `z` is the normal deviate for the confidence factor.
fn pessimistic_errors(errors: f64, n: f64, z: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let f = errors / n;
    let z2 = z * z;
    let bound = (f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).max(0.0).sqrt())
        / (1.0 + z2 / n);
    bound * n
}

/// Inverse normal CDF (upper tail) for the few confidence values C4.5
/// uses; linear interpolation over a small table is ample here.
fn z_for_confidence(cf: f64) -> f64 {
    // (upper-tail probability, z)
    const TABLE: [(f64, f64); 8] = [
        (0.001, 3.09),
        (0.005, 2.58),
        (0.01, 2.33),
        (0.05, 1.65),
        (0.10, 1.28),
        (0.20, 0.84),
        (0.25, 0.69),
        (0.40, 0.25),
    ];
    let cf = cf.clamp(0.001, 0.4);
    for w in TABLE.windows(2) {
        let (p0, z0) = w[0];
        let (p1, z1) = w[1];
        if cf <= p1 {
            let t = (cf - p0) / (p1 - p0);
            return z0 + t * (z1 - z0);
        }
    }
    0.25
}

struct Builder<'a> {
    /// Attribute columns (class column removed), borrowed from the table.
    cols: Vec<&'a [u8]>,
    /// Class column, borrowed from the table.
    y: &'a [u8],
    attr_cards: Vec<usize>,
    n_classes: usize,
    cfg: &'a C45,
    nodes: Vec<Node>,
    z: f64,
}

impl Builder<'_> {
    fn class_counts(&self, idx: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes];
        for &i in idx {
            counts[self.y[i] as usize] += 1;
        }
        counts
    }

    fn build(&mut self, idx: &[usize], depth: usize) -> usize {
        let counts = self.class_counts(idx);
        let base_entropy = entropy(&counts);
        let n = idx.len();
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || n < 2 * self.cfg.min_leaf || depth >= self.cfg.max_depth {
            self.nodes.push(Node::Leaf { counts });
            return self.nodes.len() - 1;
        }

        // Evaluate candidate splits: gain and split info per attribute.
        let mut gains: Vec<(usize, f64, f64)> = Vec::new(); // (attr, gain, split_info)
        for a in 0..self.attr_cards.len() {
            let card = self.attr_cards[a];
            if card < 2 {
                continue;
            }
            let col = self.cols[a];
            let mut branch_counts = vec![vec![0u32; self.n_classes]; card];
            let mut branch_sizes = vec![0usize; card];
            for &i in idx {
                let v = col[i] as usize;
                branch_counts[v][self.y[i] as usize] += 1;
                branch_sizes[v] += 1;
            }
            let non_empty = branch_sizes.iter().filter(|&&s| s > 0).count();
            if non_empty < 2 {
                continue;
            }
            // C4.5's -m: at least two branches with min_leaf rows.
            let populous = branch_sizes
                .iter()
                .filter(|&&s| s >= self.cfg.min_leaf)
                .count();
            if populous < 2 {
                continue;
            }
            let mut cond = 0.0;
            let mut split_info = 0.0;
            for (bc, &bs) in branch_counts.iter().zip(&branch_sizes) {
                if bs == 0 {
                    continue;
                }
                let w = bs as f64 / n as f64;
                cond += w * entropy(bc);
                split_info -= w * w.log2();
            }
            let gain = base_entropy - cond;
            if gain > 1e-10 && split_info > 1e-10 {
                gains.push((a, gain, split_info));
            }
        }
        if gains.is_empty() {
            self.nodes.push(Node::Leaf { counts });
            return self.nodes.len() - 1;
        }
        let avg_gain: f64 = gains.iter().map(|g| g.1).sum::<f64>() / gains.len() as f64;
        let (attr, _, _) = *gains
            .iter()
            .filter(|g| g.1 >= avg_gain - 1e-12)
            .max_by(|a, b| {
                (a.1 / a.2)
                    .partial_cmp(&(b.1 / b.2))
                    .expect("finite gain ratios")
            })
            .expect("at least one candidate above average");

        // Partition and recurse.
        let card = self.attr_cards[attr];
        let col = self.cols[attr];
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); card];
        for &i in idx {
            parts[col[i] as usize].push(i);
        }
        let mut children = vec![usize::MAX; card];
        for (v, part) in parts.iter().enumerate() {
            if !part.is_empty() {
                children[v] = self.build(part, depth + 1);
            }
        }
        self.nodes.push(Node::Split {
            attr,
            children,
            counts,
        });
        self.nodes.len() - 1
    }

    /// Pessimistic-error pruning, bottom-up. Returns the node's estimated
    /// (pessimistic) error count after pruning.
    fn prune(&mut self, node: usize) -> f64 {
        let (children, counts) = match &self.nodes[node] {
            Node::Leaf { counts } => {
                let n: u32 = counts.iter().sum();
                let errors = n - counts.iter().max().copied().unwrap_or(0);
                return pessimistic_errors(errors as f64, n as f64, self.z);
            }
            Node::Split {
                children, counts, ..
            } => (children.clone(), counts.clone()),
        };
        let mut subtree_err = 0.0;
        for &c in children.iter().filter(|&&c| c != usize::MAX) {
            subtree_err += self.prune(c);
        }
        let n: u32 = counts.iter().sum();
        let errors = n - counts.iter().max().copied().unwrap_or(0);
        let leaf_err = pessimistic_errors(errors as f64, n as f64, self.z);
        if leaf_err <= subtree_err + 0.1 {
            self.nodes[node] = Node::Leaf { counts };
            leaf_err
        } else {
            subtree_err
        }
    }
}

impl Learner for C45 {
    type Model = C45Model;

    fn fit(&self, table: &NominalTable, class_col: usize) -> C45Model {
        assert!(class_col < table.n_cols(), "class column out of range");
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        let n_classes = table.cards()[class_col];
        let attr_cards: Vec<usize> = table
            .cards()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != class_col)
            .map(|(_, &c)| c)
            .collect();
        // Borrow columns straight out of the columnar table: no row
        // materialisation, the builder's counting loops scan contiguous
        // slices.
        let cols: Vec<&[u8]> = (0..attr_cards.len())
            .map(|a| table.col(attr_index(a, class_col)))
            .collect();
        let mut b = Builder {
            cols,
            y: table.col(class_col),
            attr_cards: attr_cards.clone(),
            n_classes,
            cfg: self,
            nodes: Vec::new(),
            z: z_for_confidence(self.confidence),
        };
        let all: Vec<usize> = (0..table.n_rows()).collect();
        let root = b.build(&all, 0);
        b.prune(root);
        C45Model {
            nodes: b.nodes,
            root,
            n_classes,
            attr_cards,
        }
    }
}

impl Classifier for C45Model {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
        check_row_width(row.len(), class_col, self.attr_cards.len());
        let mut node = self.root;
        let counts = loop {
            match &self.nodes[node] {
                Node::Leaf { counts } => break counts,
                Node::Split {
                    attr,
                    children,
                    counts,
                } => {
                    let card = self.attr_cards[*attr];
                    let v = (row[attr_index(*attr, class_col)] as usize).min(card - 1);
                    let child = children[v];
                    if child == usize::MAX {
                        break counts; // empty branch: use this node's counts
                    }
                    node = child;
                }
            }
        };
        // Laplace-smoothed leaf frequencies (the paper's nᵢ/n rule).
        let n: u32 = counts.iter().sum();
        let k = self.n_classes as f64;
        out.clear();
        out.extend(counts.iter().map(|&c| (c as f64 + 1.0) / (n as f64 + k)));
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

use crate::persist::{read_vec_usize, write_vec_usize, Persist, PersistError, Reader, Writer};

const NODE_LEAF: u8 = 0;
const NODE_SPLIT: u8 = 1;
/// On-wire sentinel for an empty branch (`usize::MAX` in memory).
const NO_CHILD: u32 = u32::MAX;

impl Persist for C45Model {
    fn write_into(&self, w: &mut Writer) {
        w.u32(u32::try_from(self.n_classes).expect("class count fits u32"));
        w.u32(u32::try_from(self.root).expect("node index fits u32"));
        write_vec_usize(w, &self.attr_cards);
        w.seq_len(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { counts } => {
                    w.u8(NODE_LEAF);
                    crate::persist::write_vec_u32(w, counts);
                }
                Node::Split {
                    attr,
                    children,
                    counts,
                } => {
                    w.u8(NODE_SPLIT);
                    w.u32(u32::try_from(*attr).expect("attr index fits u32"));
                    w.seq_len(children.len());
                    for &c in children {
                        w.u32(if c == usize::MAX {
                            NO_CHILD
                        } else {
                            u32::try_from(c).expect("node index fits u32")
                        });
                    }
                    crate::persist::write_vec_u32(w, counts);
                }
            }
        }
    }

    fn read_from(r: &mut Reader) -> Result<Self, PersistError> {
        let n_classes = r.u32()? as usize;
        if n_classes == 0 || n_classes > 256 {
            return Err(PersistError::Malformed("C4.5 class count out of range"));
        }
        let root = r.u32()? as usize;
        let attr_cards = read_vec_usize(r)?;
        let n_nodes = r.seq_len(1)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let node = match r.u8()? {
                NODE_LEAF => {
                    let counts = r.vec_u32()?;
                    if counts.len() != n_classes {
                        return Err(PersistError::Malformed("C4.5 leaf counts width mismatch"));
                    }
                    Node::Leaf { counts }
                }
                NODE_SPLIT => {
                    let attr = r.u32()? as usize;
                    if attr >= attr_cards.len() {
                        return Err(PersistError::Malformed("C4.5 split attr out of range"));
                    }
                    let children: Vec<usize> = r
                        .vec_u32()?
                        .into_iter()
                        .map(|c| {
                            if c == NO_CHILD {
                                usize::MAX
                            } else {
                                c as usize
                            }
                        })
                        .collect();
                    if children.len() != attr_cards[attr] {
                        return Err(PersistError::Malformed("C4.5 branch count != attr card"));
                    }
                    let counts = r.vec_u32()?;
                    if counts.len() != n_classes {
                        return Err(PersistError::Malformed("C4.5 split counts width mismatch"));
                    }
                    Node::Split {
                        attr,
                        children,
                        counts,
                    }
                }
                _ => return Err(PersistError::Malformed("unknown C4.5 node tag")),
            };
            nodes.push(node);
        }
        if root >= nodes.len() {
            return Err(PersistError::Malformed("C4.5 root index out of range"));
        }
        for node in &nodes {
            if let Node::Split { children, .. } = node {
                if children
                    .iter()
                    .any(|&c| c != usize::MAX && c >= nodes.len())
                {
                    return Err(PersistError::Malformed("C4.5 child index out of range"));
                }
            }
        }
        Ok(C45Model {
            nodes,
            root,
            n_classes,
            attr_cards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn table(rows: Vec<Vec<u8>>, cards: Vec<usize>) -> NominalTable {
        let names = (0..cards.len()).map(|i| format!("f{i}")).collect();
        NominalTable::new(names, cards, rows).unwrap()
    }

    #[test]
    fn learns_conjunction_exactly() {
        let mut rows = Vec::new();
        for _ in 0..4 {
            for a in 0..2u8 {
                for b in 0..2u8 {
                    rows.push(vec![a, b, a & b]);
                }
            }
        }
        let m = C45::default().fit(&table(rows, vec![2, 2, 2]), 2);
        for a in 0..2u8 {
            for b in 0..2u8 {
                assert_eq!(m.predict(&[a, b]), a & b, "and({a},{b})");
            }
        }
    }

    #[test]
    fn greedy_trees_cannot_split_pure_xor() {
        // Document the known limitation: both attributes have zero
        // information gain on XOR, so the tree degenerates to a prior leaf.
        let mut rows = Vec::new();
        for _ in 0..4 {
            for a in 0..2u8 {
                for b in 0..2u8 {
                    rows.push(vec![a, b, a ^ b]);
                }
            }
        }
        let m = C45::default().fit(&table(rows, vec![2, 2, 2]), 2);
        assert_eq!(m.depth(), 1, "no attribute offers positive gain");
    }

    #[test]
    fn ignores_irrelevant_attributes() {
        // Class = attr1; attr0 is pure noise.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rows: Vec<Vec<u8>> = (0..200)
            .map(|_| {
                let noise = rng.gen_range(0..4u8);
                let sig = rng.gen_range(0..3u8);
                vec![noise, sig, sig]
            })
            .collect();
        let m = C45::default().fit(&table(rows, vec![4, 3, 3]), 2);
        for sig in 0..3u8 {
            for noise in 0..4u8 {
                assert_eq!(m.predict(&[noise, sig]), sig);
            }
        }
    }

    #[test]
    fn leaf_probabilities_are_laplace_smoothed() {
        // A pure leaf of 8 class-1 rows: p(1) = 9/10 with k=2.
        let rows = vec![vec![0, 1]; 8];
        let m = C45::default().fit(&table(rows, vec![1, 2]), 1);
        let p = m.class_probs(&[0]);
        assert!((p[1] - 9.0 / 10.0).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // Class almost independent of the attribute: tree should stay tiny.
        let mut rows = Vec::new();
        for v in 0..5u8 {
            for i in 0..20 {
                rows.push(vec![v, u8::from(i % 10 == 0)]);
            }
        }
        let m = C45::default().fit(&table(rows, vec![5, 2]), 1);
        assert!(
            m.depth() <= 2,
            "noise split should be pruned, got depth {}",
            m.depth()
        );
        // Majority class everywhere.
        for v in 0..5u8 {
            assert_eq!(m.predict(&[v]), 0);
        }
    }

    #[test]
    fn deep_interaction_is_learned() {
        // class = (a AND b) OR c over binary attrs.
        let mut rows = Vec::new();
        for _ in 0..6 {
            for a in 0..2u8 {
                for b in 0..2u8 {
                    for c in 0..2u8 {
                        rows.push(vec![a, b, c, (a & b) | c]);
                    }
                }
            }
        }
        let m = C45::default().fit(&table(rows, vec![2, 2, 2, 2]), 3);
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    assert_eq!(m.predict(&[a, b, c]), (a & b) | c);
                }
            }
        }
    }

    #[test]
    fn wilson_bound_monotone_in_errors() {
        let z = z_for_confidence(0.25);
        let a = pessimistic_errors(0.0, 10.0, z);
        let b = pessimistic_errors(2.0, 10.0, z);
        let c = pessimistic_errors(5.0, 10.0, z);
        assert!(a < b && b < c);
        assert!(a > 0.0, "even zero observed errors get a pessimistic bump");
    }

    #[test]
    fn handles_single_class_tables() {
        let rows = vec![vec![0, 0], vec![1, 0], vec![2, 0]];
        let m = C45::default().fit(&table(rows, vec![3, 1]), 1);
        assert_eq!(m.predict(&[1]), 0);
        assert_eq!(m.n_classes(), 1);
    }
}
