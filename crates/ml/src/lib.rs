//! # cfa-ml
//!
//! From-scratch inductive learners with calibrated class probabilities —
//! the three classifier families the paper evaluates:
//!
//! * [`c45::C45`] — a decision-tree learner in the style of Quinlan's C4.5:
//!   multiway splits on nominal attributes chosen by gain ratio, with
//!   pessimistic-error pruning; leaves expose Laplace-smoothed class
//!   frequencies.
//! * [`ripper::Ripper`] — an ordered-rule learner in the style of Cohen's
//!   RIPPER (IREP*): per-class grow/prune rule induction with FOIL gain,
//!   classes processed from rarest to most frequent, the last class as
//!   default.
//! * [`naive_bayes::NaiveBayes`] — a categorical naive Bayes classifier
//!   with Laplace smoothing, exactly the probability form given in §3 of
//!   the paper.
//!
//! All learners consume [`NominalTable`]s — datasets of discrete (nominal)
//! attributes — through the [`Learner`] trait and produce [`Classifier`]s
//! whose [`Classifier::class_probs`] output feeds the cross-feature
//! analysis combiner (Algorithm 3 of the paper).
//!
//! # Example
//!
//! ```
//! use cfa_ml::{Learner, Classifier, NominalTable, c45::C45};
//!
//! // Toy data: class = attr0 AND attr1.
//! let rows = vec![
//!     vec![0, 0, 0], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1],
//!     vec![0, 0, 0], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1],
//! ];
//! let table = NominalTable::new(
//!     vec!["a".into(), "b".into(), "and".into()],
//!     vec![2, 2, 2],
//!     rows,
//! ).unwrap();
//! let model = C45::default().fit(&table, 2);
//! assert_eq!(model.predict(&[0, 1]), 0);
//! assert_eq!(model.predict(&[1, 1]), 1);
//! ```

pub mod c45;
pub mod dataset;
pub mod metrics;
pub mod naive_bayes;
pub mod ripper;

pub use c45::C45;
pub use dataset::{DatasetError, NominalTable};
pub use naive_bayes::NaiveBayes;
pub use ripper::Ripper;

/// A trained model over nominal attributes.
///
/// `x` is the attribute vector *excluding* the class column, in the same
/// order the learner saw during [`Learner::fit`].
pub trait Classifier {
    /// Number of classes the model distinguishes.
    fn n_classes(&self) -> usize;

    /// Estimated probability distribution over classes for `x`.
    ///
    /// The returned vector has length [`Classifier::n_classes`] and sums to
    /// 1 (within floating-point error).
    fn class_probs(&self, x: &[u8]) -> Vec<f64>;

    /// The most probable class for `x`.
    fn predict(&self, x: &[u8]) -> u8 {
        let probs = self.class_probs(x);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are comparable"))
            .map(|(i, _)| i as u8)
            .unwrap_or(0)
    }

    /// Estimated probability of a specific class for `x`.
    ///
    /// This is the `p(f_i(x) | x)` of the paper's Algorithm 3.
    fn prob_of(&self, x: &[u8], class: u8) -> f64 {
        self.class_probs(x)
            .get(class as usize)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Boxed classifiers are classifiers, so heterogeneous model kinds can sit
/// behind one ensemble type.
impl Classifier for Box<dyn Classifier> {
    fn n_classes(&self) -> usize {
        (**self).n_classes()
    }

    fn class_probs(&self, x: &[u8]) -> Vec<f64> {
        (**self).class_probs(x)
    }

    fn predict(&self, x: &[u8]) -> u8 {
        (**self).predict(x)
    }

    fn prob_of(&self, x: &[u8], class: u8) -> f64 {
        (**self).prob_of(x, class)
    }
}

/// A learning algorithm that fits a [`Classifier`] predicting one column of
/// a [`NominalTable`] from all the others.
pub trait Learner {
    /// The model type this learner produces.
    type Model: Classifier;

    /// Fits a model predicting column `class_col` from the remaining
    /// columns (in their original order, with `class_col` removed).
    ///
    /// # Panics
    ///
    /// Panics if `class_col` is out of range or the table has no rows.
    fn fit(&self, table: &NominalTable, class_col: usize) -> Self::Model;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl Classifier for Fixed {
        fn n_classes(&self) -> usize {
            self.0.len()
        }
        fn class_probs(&self, _x: &[u8]) -> Vec<f64> {
            self.0.clone()
        }
    }

    #[test]
    fn predict_is_argmax_of_probs() {
        let c = Fixed(vec![0.1, 0.7, 0.2]);
        assert_eq!(c.predict(&[]), 1);
        assert!((c.prob_of(&[], 2) - 0.2).abs() < 1e-12);
        assert_eq!(c.prob_of(&[], 9), 0.0);
    }
}
