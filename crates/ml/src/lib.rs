//! # cfa-ml
//!
//! From-scratch inductive learners with calibrated class probabilities —
//! the three classifier families the paper evaluates:
//!
//! * [`c45::C45`] — a decision-tree learner in the style of Quinlan's C4.5:
//!   multiway splits on nominal attributes chosen by gain ratio, with
//!   pessimistic-error pruning; leaves expose Laplace-smoothed class
//!   frequencies.
//! * [`ripper::Ripper`] — an ordered-rule learner in the style of Cohen's
//!   RIPPER (IREP*): per-class grow/prune rule induction with FOIL gain,
//!   classes processed from rarest to most frequent, the last class as
//!   default.
//! * [`naive_bayes::NaiveBayes`] — a categorical naive Bayes classifier
//!   with Laplace smoothing, exactly the probability form given in §3 of
//!   the paper.
//!
//! All learners consume [`NominalTable`]s — datasets of discrete (nominal)
//! attributes, stored column-major — through the [`Learner`] trait and
//! produce [`Classifier`]s whose probability output feeds the
//! cross-feature analysis combiner (Algorithm 3 of the paper).
//!
//! ## Prediction without allocation
//!
//! The ensemble asks `L` sub-models about every event, so the prediction
//! path avoids per-call allocation: [`Classifier::class_probs_into`] writes
//! into a caller-owned buffer and takes the *full-width* row together with
//! the index of the class column to skip in place (no row copy to delete
//! one entry). Bare attribute vectors — rows that never contained a class
//! column — use the [`NO_CLASS`] sentinel, which is what the allocating
//! convenience wrappers ([`Classifier::class_probs`], [`Classifier::predict`],
//! [`Classifier::prob_of`]) pass.
//!
//! # Example
//!
//! ```
//! use cfa_ml::{Learner, Classifier, NominalTable, c45::C45};
//!
//! // Toy data: class = attr0 AND attr1.
//! let rows = vec![
//!     vec![0, 0, 0], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1],
//!     vec![0, 0, 0], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1],
//! ];
//! let table = NominalTable::new(
//!     vec!["a".into(), "b".into(), "and".into()],
//!     vec![2, 2, 2],
//!     rows,
//! ).unwrap();
//! let model = C45::default().fit(&table, 2);
//! assert_eq!(model.predict(&[0, 1]), 0);
//! assert_eq!(model.predict(&[1, 1]), 1);
//!
//! // Zero-alloc path: full-width row, class column skipped in place.
//! let mut scratch = Vec::new();
//! assert_eq!(model.predict_row(&[1, 1, 0], 2, &mut scratch), 1);
//! ```

pub mod c45;
pub mod compiled;
pub mod dataset;
pub mod metrics;
pub mod naive_bayes;
pub mod persist;
pub mod ripper;

pub use c45::C45;
pub use compiled::{CompiledEnsemble, CompiledMethod, CompiledModel};
pub use dataset::{DatasetError, NominalTable};
pub use naive_bayes::NaiveBayes;
pub use persist::{AnyLearner, AnyModel, Persist, PersistError};
pub use ripper::Ripper;

/// Sentinel class-column index meaning "this row is a bare attribute
/// vector; skip nothing".
pub const NO_CLASS: usize = usize::MAX;

/// Maps attribute index `attr` (in class-column-removed order) to its
/// position in a full-width row whose class column is `class_col`.
///
/// With `class_col == `[`NO_CLASS`] this is the identity, so bare
/// attribute vectors need no special casing at call sites.
#[inline]
pub fn attr_index(attr: usize, class_col: usize) -> usize {
    attr + usize::from(attr >= class_col)
}

/// Asserts that a row of `row_len` values carries exactly `n_attrs`
/// attributes once the class column (if any) is discounted.
#[inline]
fn check_row_width(row_len: usize, class_col: usize, n_attrs: usize) {
    let expected = n_attrs + usize::from(class_col != NO_CLASS);
    assert_eq!(row_len, expected, "attribute vector length mismatch");
}

/// Index of the largest probability, ties broken towards the *last*
/// maximum (the behaviour of `Iterator::max_by`, which the trait's original
/// allocating `predict` used — kept so refactoring cannot flip tie-broken
/// predictions).
#[inline]
fn argmax_last(probs: &[f64]) -> u8 {
    let mut best = 0usize;
    let mut best_p = f64::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p >= best_p {
            best = i;
            best_p = p;
        }
    }
    best as u8
}

/// A trained model over nominal attributes.
///
/// Models are shared immutably across the ensemble's worker threads, hence
/// the `Send + Sync` bound.
///
/// The one required method is [`Classifier::class_probs_into`]: it reads a
/// *full-width* row and skips the class column in place, writing the class
/// distribution into a caller-owned buffer. Everything else — allocating
/// conveniences over bare attribute vectors, argmax prediction, single-class
/// probability lookup — has default implementations in terms of it.
pub trait Classifier: Send + Sync {
    /// Number of classes the model distinguishes.
    fn n_classes(&self) -> usize;

    /// Writes the estimated class distribution for `row` into `out`
    /// (cleared first; ends with length [`Classifier::n_classes`], summing
    /// to 1 within floating-point error).
    ///
    /// `row` is a full-width table row whose entry at `class_col` is
    /// ignored; pass [`NO_CLASS`] when `row` is a bare attribute vector in
    /// the order the learner saw during [`Learner::fit`].
    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>);

    /// Estimated probability distribution over classes for the bare
    /// attribute vector `x`. Allocates; batch loops should prefer
    /// [`Classifier::class_probs_into`].
    fn class_probs(&self, x: &[u8]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_classes());
        self.class_probs_into(x, NO_CLASS, &mut out);
        out
    }

    /// The most probable class for full-width `row`, skipping `class_col`
    /// in place. `scratch` is a reusable probability buffer; no allocation
    /// happens once it has capacity [`Classifier::n_classes`].
    fn predict_row(&self, row: &[u8], class_col: usize, scratch: &mut Vec<f64>) -> u8 {
        self.class_probs_into(row, class_col, scratch);
        argmax_last(scratch)
    }

    /// The most probable class for the bare attribute vector `x`.
    fn predict(&self, x: &[u8]) -> u8 {
        // audit: allow(D008, reason = "one-shot convenience wrapper; batch loops call predict_row with a reused scratch buffer")
        let mut scratch = Vec::with_capacity(self.n_classes());
        self.predict_row(x, NO_CLASS, &mut scratch)
    }

    /// Estimated probability of `class` for full-width `row`, skipping
    /// `class_col` in place. Zero-alloc analogue of [`Classifier::prob_of`];
    /// this is the `p(f_i(x) | x)` of the paper's Algorithm 3.
    fn prob_of_row(&self, row: &[u8], class_col: usize, class: u8, scratch: &mut Vec<f64>) -> f64 {
        self.class_probs_into(row, class_col, scratch);
        scratch.get(class as usize).copied().unwrap_or(0.0)
    }

    /// Estimated probability of a specific class for the bare attribute
    /// vector `x`.
    fn prob_of(&self, x: &[u8], class: u8) -> f64 {
        // audit: allow(D008, reason = "one-shot convenience wrapper; batch loops call prob_of_row with a reused scratch buffer")
        let mut scratch = Vec::with_capacity(self.n_classes());
        self.prob_of_row(x, NO_CLASS, class, &mut scratch)
    }
}

/// Boxed classifiers are classifiers, so heterogeneous model kinds can sit
/// behind one ensemble type.
impl Classifier for Box<dyn Classifier> {
    fn n_classes(&self) -> usize {
        (**self).n_classes()
    }

    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
        (**self).class_probs_into(row, class_col, out)
    }

    fn class_probs(&self, x: &[u8]) -> Vec<f64> {
        (**self).class_probs(x)
    }

    fn predict_row(&self, row: &[u8], class_col: usize, scratch: &mut Vec<f64>) -> u8 {
        (**self).predict_row(row, class_col, scratch)
    }

    fn predict(&self, x: &[u8]) -> u8 {
        (**self).predict(x)
    }

    fn prob_of_row(&self, row: &[u8], class_col: usize, class: u8, scratch: &mut Vec<f64>) -> f64 {
        (**self).prob_of_row(row, class_col, class, scratch)
    }

    fn prob_of(&self, x: &[u8], class: u8) -> f64 {
        (**self).prob_of(x, class)
    }
}

/// A learning algorithm that fits a [`Classifier`] predicting one column of
/// a [`NominalTable`] from all the others.
pub trait Learner {
    /// The model type this learner produces.
    type Model: Classifier;

    /// Fits a model predicting column `class_col` from the remaining
    /// columns (in their original order, with `class_col` removed).
    ///
    /// # Panics
    ///
    /// Panics if `class_col` is out of range or the table has no rows.
    fn fit(&self, table: &NominalTable, class_col: usize) -> Self::Model;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl Classifier for Fixed {
        fn n_classes(&self) -> usize {
            self.0.len()
        }
        fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
            check_row_width(row.len(), class_col, 0);
            out.clear();
            out.extend_from_slice(&self.0);
        }
    }

    #[test]
    fn predict_is_argmax_of_probs() {
        let c = Fixed(vec![0.1, 0.7, 0.2]);
        assert_eq!(c.predict(&[]), 1);
        assert!((c.prob_of(&[], 2) - 0.2).abs() < 1e-12);
        assert_eq!(c.prob_of(&[], 9), 0.0);
    }

    #[test]
    fn predict_breaks_ties_towards_the_last_maximum() {
        // `Iterator::max_by` (the original implementation) returns the last
        // of equal maxima; argmax_last must agree.
        let c = Fixed(vec![0.4, 0.4, 0.2]);
        assert_eq!(c.predict(&[]), 1);
    }

    #[test]
    fn row_variants_skip_the_class_column() {
        let c = Fixed(vec![0.3, 0.7]);
        let mut scratch = Vec::new();
        assert_eq!(c.predict_row(&[9], 0, &mut scratch), 1);
        assert!((c.prob_of_row(&[9], 0, 0, &mut scratch) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn attr_index_skips_the_class_column() {
        assert_eq!(attr_index(0, 2), 0);
        assert_eq!(attr_index(1, 2), 1);
        assert_eq!(attr_index(2, 2), 3);
        assert_eq!(attr_index(0, 0), 1);
        assert_eq!(attr_index(5, NO_CLASS), 5);
    }

    #[test]
    fn classifiers_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Box<dyn Classifier>>();
    }
}
