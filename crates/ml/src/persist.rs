//! Byte-level persistence primitives shared by every crate that writes
//! pieces of the trained artifact (`CFAM` files).
//!
//! The encoding is deliberately boring so it can be byte-deterministic:
//! every integer is little-endian fixed width, every `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`/`from_bits`, so a round trip reproduces
//! bit-identical scores), every string is a `u32` length prefix plus UTF-8
//! bytes, and every collection is a `u32` element count followed by its
//! elements. There is no padding, no alignment, and no
//! platform-dependent type anywhere in the format.
//!
//! Reading is strict: the [`Reader`] validates every length prefix against
//! the bytes actually present *before* allocating, so a corrupt or hostile
//! artifact produces a typed [`PersistError`] — never a panic and never an
//! unbounded `Vec::with_capacity`.

use std::fmt;

/// Cap on a single declared collection length. Real artifacts hold a few
/// hundred sub-models of a few thousand nodes each; anything above this is
/// a corrupt or hostile length prefix.
pub const MAX_ELEMENTS: u64 = 1 << 28;

/// Error loading or saving a persisted artifact.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O error while reading or writing.
    Io(std::io::Error),
    /// The stream does not start with the expected magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The artifact was written by a future (or unknown) format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build can read.
        supported: u16,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// The stream ended before a declared structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A declared length exceeds what the remaining bytes could encode.
    TooLarge {
        /// The declared element count or byte length.
        declared: u64,
        /// The largest value the decoder would accept here.
        cap: u64,
    },
    /// A structurally invalid value (bad enum tag, index out of range, …).
    Malformed(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}, expected a CFAM artifact")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than supported version {supported}"
            ),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum {found:#018x} does not match header {expected:#018x}"
            ),
            PersistError::Truncated { needed, available } => write!(
                f,
                "artifact truncated: needed {needed} bytes, only {available} available"
            ),
            PersistError::TooLarge { declared, cap } => write!(
                f,
                "declared length {declared} exceeds the acceptable cap {cap}"
            ),
            PersistError::Malformed(what) => write!(f, "malformed artifact: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the artifact integrity checksum. Deterministic,
/// dependency-free, and plenty for corruption detection (security against
/// a deliberate forger is out of scope; the artifact is trusted input).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only byte sink for payload assembly. All writes are
/// infallible (the payload lives in memory until the container frames it).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The assembled payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a collection length as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit in `u32` (no in-memory model comes
    /// within orders of magnitude of that).
    pub fn seq_len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection length fits u32"));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A strict, bounds-checked cursor over a payload slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the payload has been consumed exactly.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let Some(end) = self.pos.checked_add(n) else {
            return Err(PersistError::TooLarge {
                declared: n as u64,
                cap: self.remaining() as u64,
            });
        };
        let Some(slice) = self.buf.get(self.pos..end) else {
            return Err(PersistError::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            });
        };
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection length and validates it against the bytes that
    /// are actually present: a length claiming more than
    /// `remaining / min_elem_bytes` elements (or more than
    /// [`MAX_ELEMENTS`]) is rejected *before* any allocation, so a
    /// corrupt prefix can never drive an OOM-sized `Vec::with_capacity`.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let declared = u64::from(self.u32()?);
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if declared > cap.min(MAX_ELEMENTS) {
            return Err(PersistError::TooLarge {
                declared,
                cap: cap.min(MAX_ELEMENTS),
            });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let n = self.seq_len(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("string is not valid UTF-8"))
    }

    /// Reads a `u32` sequence as `Vec<u32>`.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.seq_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads an `f64` sequence as `Vec<f64>` (exact bit patterns).
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.seq_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

/// Writes a `u32` sequence with its length prefix.
pub fn write_vec_u32(w: &mut Writer, v: &[u32]) {
    w.seq_len(v.len());
    for &x in v {
        w.u32(x);
    }
}

/// Writes an `f64` sequence with its length prefix (exact bit patterns).
pub fn write_vec_f64(w: &mut Writer, v: &[f64]) {
    w.seq_len(v.len());
    for &x in v {
        w.f64(x);
    }
}

/// Writes a `usize` sequence as `u32`s with a length prefix.
pub fn write_vec_usize(w: &mut Writer, v: &[usize]) {
    w.seq_len(v.len());
    for &x in v {
        w.u32(u32::try_from(x).expect("cardinality fits u32"));
    }
}

/// Reads a `u32` sequence back as `Vec<usize>`.
pub fn read_vec_usize(r: &mut Reader) -> Result<Vec<usize>, PersistError> {
    Ok(r.vec_u32()?.into_iter().map(|x| x as usize).collect())
}

/// A value with a byte-deterministic binary encoding: identical values
/// always serialize to identical bytes, and `read_from(write_into(x)) == x`
/// reproduces every parameter bit-for-bit.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn write_into(&self, w: &mut Writer);

    /// Decodes one value from `r`, validating every length and tag.
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] on truncation, oversized length
    /// prefixes, or structurally invalid data; never panics.
    fn read_from(r: &mut Reader) -> Result<Self, PersistError>;

    /// Convenience: this value's standalone encoding.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_into(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a standalone encoding, requiring the buffer
    /// to be consumed exactly.
    ///
    /// # Errors
    ///
    /// As [`Persist::read_from`], plus [`PersistError::Malformed`] if
    /// trailing bytes remain.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes);
        let v = Self::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(PersistError::Malformed("trailing bytes after value"));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// AnyModel / AnyLearner — serializable closed-world classifier ensemble
// ---------------------------------------------------------------------------

use crate::c45::{C45Model, C45};
use crate::naive_bayes::{NaiveBayes, NaiveBayesModel};
use crate::ripper::{Ripper, RipperModel};
use crate::{Classifier, Learner, NominalTable};

const TAG_C45: u8 = 0;
const TAG_RIPPER: u8 = 1;
const TAG_BAYES: u8 = 2;

/// A trained classifier of any of the three families the paper evaluates,
/// as a closed enum rather than a `Box<dyn Classifier>` so the full
/// ensemble can be persisted and re-loaded with a one-byte tag per
/// sub-model. Every [`Classifier`] method delegates to the inner model, so
/// scoring through `AnyModel` is bit-identical to scoring the concrete
/// type (including RIPPER's first-match `predict_row` override).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyModel {
    /// A fitted C4.5 decision tree.
    C45(C45Model),
    /// A fitted RIPPER ordered rule list.
    Ripper(RipperModel),
    /// A fitted categorical naive Bayes model.
    Bayes(NaiveBayesModel),
}

impl Classifier for AnyModel {
    fn n_classes(&self) -> usize {
        match self {
            AnyModel::C45(m) => m.n_classes(),
            AnyModel::Ripper(m) => m.n_classes(),
            AnyModel::Bayes(m) => m.n_classes(),
        }
    }

    fn class_probs_into(&self, row: &[u8], class_col: usize, out: &mut Vec<f64>) {
        match self {
            AnyModel::C45(m) => m.class_probs_into(row, class_col, out),
            AnyModel::Ripper(m) => m.class_probs_into(row, class_col, out),
            AnyModel::Bayes(m) => m.class_probs_into(row, class_col, out),
        }
    }

    fn predict_row(&self, row: &[u8], class_col: usize, scratch: &mut Vec<f64>) -> u8 {
        match self {
            AnyModel::C45(m) => m.predict_row(row, class_col, scratch),
            AnyModel::Ripper(m) => m.predict_row(row, class_col, scratch),
            AnyModel::Bayes(m) => m.predict_row(row, class_col, scratch),
        }
    }

    fn prob_of_row(&self, row: &[u8], class_col: usize, class: u8, scratch: &mut Vec<f64>) -> f64 {
        match self {
            AnyModel::C45(m) => m.prob_of_row(row, class_col, class, scratch),
            AnyModel::Ripper(m) => m.prob_of_row(row, class_col, class, scratch),
            AnyModel::Bayes(m) => m.prob_of_row(row, class_col, class, scratch),
        }
    }
}

impl Persist for AnyModel {
    fn write_into(&self, w: &mut Writer) {
        match self {
            AnyModel::C45(m) => {
                w.u8(TAG_C45);
                m.write_into(w);
            }
            AnyModel::Ripper(m) => {
                w.u8(TAG_RIPPER);
                m.write_into(w);
            }
            AnyModel::Bayes(m) => {
                w.u8(TAG_BAYES);
                m.write_into(w);
            }
        }
    }

    fn read_from(r: &mut Reader) -> Result<Self, PersistError> {
        match r.u8()? {
            TAG_C45 => Ok(AnyModel::C45(C45Model::read_from(r)?)),
            TAG_RIPPER => Ok(AnyModel::Ripper(RipperModel::read_from(r)?)),
            TAG_BAYES => Ok(AnyModel::Bayes(NaiveBayesModel::read_from(r)?)),
            _ => Err(PersistError::Malformed("unknown classifier tag")),
        }
    }
}

/// A learner of any family, producing [`AnyModel`]s: the serializable
/// counterpart of a boxed `dyn Learner`.
#[derive(Debug, Clone)]
pub enum AnyLearner {
    /// The C4.5 decision-tree learner.
    C45(C45),
    /// The RIPPER rule learner.
    Ripper(Ripper),
    /// The naive Bayes learner.
    Bayes(NaiveBayes),
}

impl Learner for AnyLearner {
    type Model = AnyModel;

    fn fit(&self, table: &NominalTable, class_col: usize) -> AnyModel {
        match self {
            AnyLearner::C45(l) => AnyModel::C45(l.fit(table, class_col)),
            AnyLearner::Ripper(l) => AnyModel::Ripper(l.fit(table, class_col)),
            AnyLearner::Bayes(l) => AnyModel::Bayes(l.fit(table, class_col)),
        }
    }
}

#[cfg(test)]
mod any_model_tests {
    use super::*;

    fn toy_table() -> NominalTable {
        let rows = vec![
            vec![0, 0, 0],
            vec![0, 1, 0],
            vec![1, 0, 0],
            vec![1, 1, 1],
            vec![0, 0, 0],
            vec![0, 1, 0],
            vec![1, 0, 0],
            vec![1, 1, 1],
        ];
        NominalTable::new(
            vec!["a".into(), "b".into(), "and".into()],
            vec![2, 2, 2],
            rows,
        )
        .unwrap()
    }

    fn learners() -> Vec<AnyLearner> {
        vec![
            AnyLearner::C45(C45::default()),
            AnyLearner::Ripper(Ripper::default()),
            AnyLearner::Bayes(NaiveBayes::default()),
        ]
    }

    #[test]
    fn any_model_round_trips_bit_identical() {
        let t = toy_table();
        for learner in learners() {
            let model = learner.fit(&t, 2);
            let bytes = model.to_bytes();
            let back = AnyModel::from_bytes(&bytes).unwrap();
            assert_eq!(model, back);
            // Probabilities agree bitwise after the round trip.
            let mut a = Vec::new();
            let mut b = Vec::new();
            for row in [[0u8, 0, 0], [0, 1, 0], [1, 0, 0], [1, 1, 0]] {
                model.class_probs_into(&row, 2, &mut a);
                back.class_probs_into(&row, 2, &mut b);
                let a_bits: Vec<u64> = a.iter().map(|p| p.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|p| p.to_bits()).collect();
                assert_eq!(a_bits, b_bits);
                assert_eq!(
                    model.predict_row(&row, 2, &mut a),
                    back.predict_row(&row, 2, &mut b)
                );
            }
        }
    }

    #[test]
    fn any_model_delegates_ripper_first_match_semantics() {
        let t = toy_table();
        let concrete = Ripper::default().fit(&t, 2);
        let wrapped = AnyModel::Ripper(concrete.clone());
        let mut s = Vec::new();
        for row in [[0u8, 0, 0], [1, 1, 0]] {
            assert_eq!(
                concrete.predict_row(&row, 2, &mut s),
                wrapped.predict_row(&row, 2, &mut s)
            );
        }
    }

    #[test]
    fn corrupt_model_bytes_are_typed_errors() {
        let t = toy_table();
        let model = AnyLearner::C45(C45::default()).fit(&t, 2);
        let bytes = model.to_bytes();

        // Unknown tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(matches!(
            AnyModel::from_bytes(&bad),
            Err(PersistError::Malformed(_))
        ));

        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(AnyModel::from_bytes(&bytes[..cut]).is_err());
        }

        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            AnyModel::from_bytes(&long),
            Err(PersistError::Malformed(_))
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips_are_exact() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("café");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "café");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // Declares u32::MAX f64s with 4 bytes of payload behind it.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.vec_f64(), Err(PersistError::TooLarge { .. })));
    }

    #[test]
    fn string_must_be_utf8() {
        let mut w = Writer::new();
        w.seq_len(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn vec_round_trips() {
        let mut w = Writer::new();
        write_vec_u32(&mut w, &[1, 2, 3]);
        write_vec_f64(&mut w, &[0.5, -1.25]);
        write_vec_usize(&mut w, &[9, 8]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.vec_f64().unwrap(), vec![0.5, -1.25]);
        assert_eq!(read_vec_usize(&mut r).unwrap(), vec![9, 8]);
        assert!(r.is_empty());
    }
}
