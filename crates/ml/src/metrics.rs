//! Evaluation metrics for classifiers.

use crate::dataset::NominalTable;
use crate::Classifier;

/// Fraction of rows of `table` whose class column the model predicts
/// correctly.
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn accuracy<C: Classifier>(model: &C, table: &NominalTable, class_col: usize) -> f64 {
    assert!(class_col < table.n_cols(), "class column out of range");
    if table.n_rows() == 0 {
        return 0.0;
    }
    let correct = table
        .rows()
        .iter()
        .filter(|row| {
            let (attrs, y) = NominalTable::split_row(row, class_col);
            model.predict(&attrs) == y
        })
        .count();
    correct as f64 / table.n_rows() as f64
}

/// Confusion matrix: `matrix[actual][predicted]` counts.
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn confusion_matrix<C: Classifier>(
    model: &C,
    table: &NominalTable,
    class_col: usize,
) -> Vec<Vec<usize>> {
    assert!(class_col < table.n_cols(), "class column out of range");
    let k = model.n_classes();
    let mut m = vec![vec![0usize; k]; k];
    for row in table.rows() {
        let (attrs, y) = NominalTable::split_row(row, class_col);
        let pred = model.predict(&attrs) as usize;
        if (y as usize) < k && pred < k {
            m[y as usize][pred] += 1;
        }
    }
    m
}

/// Mean log-probability assigned to the true class (higher is better);
/// a calibration-sensitive companion to [`accuracy`].
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn mean_log_likelihood<C: Classifier>(
    model: &C,
    table: &NominalTable,
    class_col: usize,
) -> f64 {
    assert!(class_col < table.n_cols(), "class column out of range");
    if table.n_rows() == 0 {
        return 0.0;
    }
    let total: f64 = table
        .rows()
        .iter()
        .map(|row| {
            let (attrs, y) = NominalTable::split_row(row, class_col);
            model.prob_of(&attrs, y).max(1e-12).ln()
        })
        .sum();
    total / table.n_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c45::C45;
    use crate::Learner;

    fn identity_table() -> NominalTable {
        let rows: Vec<Vec<u8>> = (0..40).map(|i| vec![i % 3, i % 3]).collect();
        NominalTable::new(vec!["a".into(), "y".into()], vec![3, 3], rows).unwrap()
    }

    #[test]
    fn perfect_model_scores_one() {
        let t = identity_table();
        let m = C45::default().fit(&t, 1);
        assert_eq!(accuracy(&m, &t, 1), 1.0);
        let cm = confusion_matrix(&m, &t, 1);
        assert_eq!(cm[0][0] + cm[1][1] + cm[2][2], 40);
        assert_eq!(cm[0][1], 0);
        assert!(mean_log_likelihood(&m, &t, 1) > -0.5);
    }

    #[test]
    fn empty_table_scores_zero() {
        let t = NominalTable::new(vec!["a".into(), "y".into()], vec![2, 2], vec![]).unwrap();
        let m = C45::default().fit(&identity_table(), 1);
        assert_eq!(accuracy(&m, &t, 1), 0.0);
        assert_eq!(mean_log_likelihood(&m, &t, 1), 0.0);
    }
}
