//! Evaluation metrics for classifiers.
//!
//! All metrics walk the table through reused row/probability buffers and
//! the zero-alloc [`Classifier::predict_row`] / [`Classifier::prob_of_row`]
//! path, so evaluating a model allocates O(1) regardless of table size.

use crate::dataset::NominalTable;
use crate::Classifier;

/// Fraction of rows of `table` whose class column the model predicts
/// correctly.
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn accuracy<C: Classifier>(model: &C, table: &NominalTable, class_col: usize) -> f64 {
    assert!(class_col < table.n_cols(), "class column out of range");
    if table.n_rows() == 0 {
        return 0.0;
    }
    let y = table.col(class_col);
    let mut row = Vec::with_capacity(table.n_cols());
    let mut scratch = Vec::with_capacity(model.n_classes());
    let mut correct = 0usize;
    for (r, &truth) in y.iter().enumerate() {
        table.copy_row_into(r, &mut row);
        if model.predict_row(&row, class_col, &mut scratch) == truth {
            correct += 1;
        }
    }
    correct as f64 / table.n_rows() as f64
}

/// Confusion matrix: `matrix[actual][predicted]` counts.
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn confusion_matrix<C: Classifier>(
    model: &C,
    table: &NominalTable,
    class_col: usize,
) -> Vec<Vec<usize>> {
    assert!(class_col < table.n_cols(), "class column out of range");
    let k = model.n_classes();
    let mut m = vec![vec![0usize; k]; k];
    let y = table.col(class_col);
    let mut row = Vec::with_capacity(table.n_cols());
    let mut scratch = Vec::with_capacity(k);
    for (r, &truth) in y.iter().enumerate() {
        table.copy_row_into(r, &mut row);
        let pred = model.predict_row(&row, class_col, &mut scratch) as usize;
        if (truth as usize) < k && pred < k {
            m[truth as usize][pred] += 1;
        }
    }
    m
}

/// Mean log-probability assigned to the true class (higher is better);
/// a calibration-sensitive companion to [`accuracy`].
///
/// # Panics
///
/// Panics if `class_col` is out of range.
pub fn mean_log_likelihood<C: Classifier>(
    model: &C,
    table: &NominalTable,
    class_col: usize,
) -> f64 {
    assert!(class_col < table.n_cols(), "class column out of range");
    if table.n_rows() == 0 {
        return 0.0;
    }
    let y = table.col(class_col);
    let mut row = Vec::with_capacity(table.n_cols());
    let mut scratch = Vec::with_capacity(model.n_classes());
    let mut total = 0.0;
    for (r, &truth) in y.iter().enumerate() {
        table.copy_row_into(r, &mut row);
        total += model
            .prob_of_row(&row, class_col, truth, &mut scratch)
            .max(1e-12)
            .ln();
    }
    total / table.n_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c45::C45;
    use crate::Learner;

    fn identity_table() -> NominalTable {
        let rows: Vec<Vec<u8>> = (0..40).map(|i| vec![i % 3, i % 3]).collect();
        NominalTable::new(vec!["a".into(), "y".into()], vec![3, 3], rows).unwrap()
    }

    #[test]
    fn perfect_model_scores_one() {
        let t = identity_table();
        let m = C45::default().fit(&t, 1);
        assert_eq!(accuracy(&m, &t, 1), 1.0);
        let cm = confusion_matrix(&m, &t, 1);
        assert_eq!(cm[0][0] + cm[1][1] + cm[2][2], 40);
        assert_eq!(cm[0][1], 0);
        assert!(mean_log_likelihood(&m, &t, 1) > -0.5);
    }

    #[test]
    fn class_column_position_does_not_matter() {
        // Same data with the class column first instead of last must give
        // the same metrics — exercises the in-place column skipping.
        let rows_last: Vec<Vec<u8>> = (0..40).map(|i| vec![i % 3, (i % 4) % 3, i % 3]).collect();
        let rows_first: Vec<Vec<u8>> = rows_last.iter().map(|r| vec![r[2], r[0], r[1]]).collect();
        let names = |n: [&str; 3]| n.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let t_last = NominalTable::new(names(["a", "b", "y"]), vec![3, 3, 3], rows_last).unwrap();
        let t_first = NominalTable::new(names(["y", "a", "b"]), vec![3, 3, 3], rows_first).unwrap();
        let m_last = C45::default().fit(&t_last, 2);
        let m_first = C45::default().fit(&t_first, 0);
        assert_eq!(
            accuracy(&m_last, &t_last, 2),
            accuracy(&m_first, &t_first, 0)
        );
        assert_eq!(
            mean_log_likelihood(&m_last, &t_last, 2),
            mean_log_likelihood(&m_first, &t_first, 0)
        );
        assert_eq!(
            confusion_matrix(&m_last, &t_last, 2),
            confusion_matrix(&m_first, &t_first, 0)
        );
    }

    #[test]
    fn empty_table_scores_zero() {
        let t = NominalTable::new(vec!["a".into(), "y".into()], vec![2, 2], vec![]).unwrap();
        let m = C45::default().fit(&identity_table(), 1);
        assert_eq!(accuracy(&m, &t, 1), 0.0);
        assert_eq!(mean_log_likelihood(&m, &t, 1), 0.0);
    }
}
