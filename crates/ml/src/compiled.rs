//! Compiled (flattened) execution forms of the trained classifiers.
//!
//! The interpreted [`Classifier`] walk is convenient for
//! training and persistence, but it pays for pointer-chasing (`Vec<Node>`
//! with per-node `Vec<u32>` counts, `Vec<Vec<f64>>` conditional tables) on
//! every scored event. This module lowers each trained [`AnyModel`] into a
//! flat, cache-friendly form:
//!
//! * **C4.5** → [`CompiledTree`]: nodes in one contiguous array, child
//!   indices in a shared pool, and — because leaf distributions are fixed
//!   at train time — the Laplace-smoothed class probabilities and argmax
//!   prediction **precomputed per node** (split nodes too: they answer for
//!   empty branches). Scoring is a loop over `(col, clamp, children_at)`
//!   triples ending in one slice copy; no recursion, no counting.
//! * **RIPPER** → [`CompiledRules`]: every condition of every rule packed
//!   into one `u32` array as `(full-width column << 8) | value`, rules
//!   delimited by fenceposts, with per-rule (and default) distributions
//!   and predicted classes precomputed.
//! * **Naive Bayes** → [`CompiledBayes`]: the per-attribute conditional
//!   log-probability tables re-laid-out so the `n_classes` addends for one
//!   observed value are contiguous, plus the resolved full-width column
//!   and clamp per attribute.
//!
//! [`CompiledEnsemble`] scores batches in structure-of-arrays order — all
//! rows through model *i*, then model *i+1* — so each model's tables stay
//! hot in cache across the whole batch instead of being evicted 140 times
//! per row.
//!
//! ## Equivalence contract
//!
//! Compiled scores are **bit-identical** to the interpreted path, not
//! merely close: every floating-point operation happens on the same values
//! in the same order (precomputing `(c + 1.0) / (n + k)` at lowering time
//! yields the same bits as computing it per row), ties break identically
//! (`argmax_last`, first-match rule semantics, `max_by_key`'s
//! last-maximum default class), and out-of-range class probabilities are
//! `0.0` on both paths. `tests/proptest_compiled.rs` and the workspace
//! `determinism_shaker` hold this line.

use crate::persist::AnyModel;
use crate::{argmax_last, Classifier, NO_CLASS};

/// How a sub-model's per-event contribution is computed. Mirrors
/// `cfa-core`'s `ScoreMethod` (duplicated here because `cfa-ml` sits below
/// `cfa-core` in the crate graph; `cfa-core` provides the conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledMethod {
    /// Algorithm 2 of the paper: contribute 1.0 when the sub-model's
    /// prediction matches the observed value, else 0.0.
    MatchCount,
    /// Algorithm 3 of the paper: contribute the probability the sub-model
    /// assigns to the observed value.
    AvgProbability,
}

/// Sentinel in [`TreeNode::col`] marking a leaf.
pub(crate) const LEAF_COL: u32 = u32::MAX;
/// Sentinel in [`CompiledTree::children`] marking an empty branch, which
/// falls back to the parent node's own distribution.
pub(crate) const NO_NODE: u32 = u32::MAX;

/// Clamp applied to a row byte before using it as a branch/table index:
/// the interpreted paths clamp to `card - 1`, and a row byte can never
/// exceed 255, so `min(card - 1, 255)` preserves the result exactly.
pub(crate) fn clamp_for(card: usize) -> u8 {
    card.saturating_sub(1).min(255) as u8
}

/// Appends the Laplace-smoothed distribution of `counts` to `out` — the
/// exact expression the interpreted C4.5/RIPPER probability paths
/// evaluate per row, evaluated once at lowering time (identical inputs,
/// identical `f64` bits).
pub(crate) fn push_laplace(out: &mut Vec<f64>, counts: &[u32], n_classes: usize) {
    let n: u32 = counts.iter().sum();
    let k = n_classes as f64;
    out.extend(counts.iter().map(|&c| (c as f64 + 1.0) / (n as f64 + k)));
}

/// One flattened tree node: the full-width row column it tests, the clamp
/// for out-of-domain values, and where its child indices start in the
/// shared pool. Leaves carry [`LEAF_COL`].
#[derive(Debug, Clone)]
pub(crate) struct TreeNode {
    pub(crate) col: u32,
    pub(crate) clamp: u8,
    pub(crate) children_at: u32,
}

/// A C4.5 tree lowered to contiguous arrays with per-node precomputed
/// Laplace distributions and argmax predictions.
#[derive(Debug, Clone)]
pub struct CompiledTree {
    pub(crate) nodes: Vec<TreeNode>,
    /// Shared child-index pool; [`NO_NODE`] marks an empty branch.
    pub(crate) children: Vec<u32>,
    /// `nodes.len() * n_classes` probabilities, node-major.
    pub(crate) probs: Vec<f64>,
    /// Precomputed `argmax_last` of each node's distribution.
    pub(crate) preds: Vec<u8>,
    pub(crate) root: u32,
    pub(crate) n_classes: usize,
}

impl CompiledTree {
    /// Index of the node whose distribution answers for `row`: the leaf
    /// the walk ends at, or the last split when a branch is empty.
    #[inline]
    fn node_for(&self, row: &[u8]) -> usize {
        let mut at = self.root as usize;
        loop {
            // audit: allow(D006, reason = "lowering constructs every node, child, and column index in range; row width is asserted at every public entry")
            let node = &self.nodes[at];
            if node.col == LEAF_COL {
                return at;
            }
            // audit: allow(D006, reason = "node.col is a lowered in-range column; row width is asserted at every public entry")
            let v = usize::from(row[node.col as usize].min(node.clamp));
            // audit: allow(D006, reason = "children_at + clamped value stays inside the pool segment the lowering reserved for this node")
            let child = self.children[node.children_at as usize + v];
            if child == NO_NODE {
                return at;
            }
            at = child as usize;
        }
    }

    #[inline]
    fn probs_of(&self, node: usize) -> &[f64] {
        // audit: allow(D006, reason = "probs has exactly n_classes entries per node by construction")
        &self.probs[node * self.n_classes..(node + 1) * self.n_classes]
    }
}

/// A RIPPER ordered rule list lowered to one packed condition array with
/// precomputed per-rule (and default) distributions and classes.
#[derive(Debug, Clone)]
pub struct CompiledRules {
    /// All conditions of all rules: `(full-width column << 8) | value`.
    pub(crate) conds: Vec<u32>,
    /// `n_rules + 1` fenceposts into [`CompiledRules::conds`].
    pub(crate) bounds: Vec<u32>,
    /// `(n_rules + 1) * n_classes` probabilities; the last entry is the
    /// default distribution.
    pub(crate) probs: Vec<f64>,
    /// `n_rules + 1` predicted classes; the last entry is the default
    /// class (last maximum of the default counts, `max_by_key` semantics).
    pub(crate) preds: Vec<u8>,
    pub(crate) n_classes: usize,
}

impl CompiledRules {
    /// Index of the first matching rule, or `n_rules` for the default.
    #[inline]
    fn match_for(&self, row: &[u8]) -> usize {
        let n_rules = self.preds.len() - 1;
        'rules: for ri in 0..n_rules {
            // audit: allow(D006, reason = "bounds has n_rules + 1 fenceposts and packed columns are in range; row width is asserted at every public entry")
            let lo = self.bounds[ri] as usize;
            // audit: allow(D006, reason = "ri < n_rules, so ri + 1 is still a valid fencepost")
            let hi = self.bounds[ri + 1] as usize;
            // audit: allow(D006, reason = "fenceposts are monotone and bounded by conds.len() by construction")
            for &packed in &self.conds[lo..hi] {
                // audit: allow(D006, reason = "packed columns are lowered in-range; row width is asserted at every public entry")
                if row[(packed >> 8) as usize] != (packed & 0xFF) as u8 {
                    continue 'rules;
                }
            }
            return ri;
        }
        n_rules
    }

    #[inline]
    fn probs_of(&self, rule: usize) -> &[f64] {
        // audit: allow(D006, reason = "probs has exactly n_classes entries per rule plus the default by construction")
        &self.probs[rule * self.n_classes..(rule + 1) * self.n_classes]
    }
}

/// Per-attribute lookup descriptor of a [`CompiledBayes`].
#[derive(Debug, Clone)]
pub(crate) struct BayesAttr {
    /// Full-width row column holding this attribute.
    pub(crate) col: u32,
    pub(crate) clamp: u8,
    /// Start of this attribute's `[value][class]` block in the table.
    pub(crate) offset: u32,
}

/// A naive Bayes model lowered to value-major conditional tables: the
/// `n_classes` log-probability addends for one observed value are
/// contiguous.
#[derive(Debug, Clone)]
pub struct CompiledBayes {
    pub(crate) log_prior: Vec<f64>,
    /// Concatenated per-attribute blocks of `stored_card * n_classes`
    /// entries, value-major within each block.
    pub(crate) table: Vec<f64>,
    pub(crate) attrs: Vec<BayesAttr>,
    pub(crate) n_classes: usize,
}

impl CompiledBayes {
    fn class_probs_into(&self, row: &[u8], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.log_prior);
        // Dispatch on the class count so the common small-k accumulation
        // runs with register-resident accumulators (each class's addend
        // sequence — prior, then attributes in order — is unchanged, so
        // the sums are bit-identical to the generic loop).
        match self.n_classes {
            2 => self.accumulate::<2>(row, out),
            3 => self.accumulate::<3>(row, out),
            4 => self.accumulate::<4>(row, out),
            5 => self.accumulate::<5>(row, out),
            6 => self.accumulate::<6>(row, out),
            7 => self.accumulate::<7>(row, out),
            8 => self.accumulate::<8>(row, out),
            _ => self.accumulate_dyn(row, out),
        }
        // Identical softmax normalisation to the interpreted path.
        let max = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in out.iter_mut() {
            *s = (*s - max).exp();
        }
        let sum: f64 = out.iter().sum();
        for p in out.iter_mut() {
            *p /= sum;
        }
    }

    /// Log-posterior accumulation with `K == n_classes` fixed at
    /// monomorphisation time: the `K` per-class accumulators live in a
    /// stack array (registers after inlining), so one attribute's adds
    /// are `K` independent chains instead of `K` store-to-load round
    /// trips through the output buffer.
    #[inline]
    fn accumulate<const K: usize>(&self, row: &[u8], out: &mut [f64]) {
        let mut acc = [0.0f64; K];
        acc.copy_from_slice(&out[..K]);
        for a in &self.attrs {
            // audit: allow(D006, reason = "lowering stores a full n_classes segment for every clamped value and resolves columns in range; row width is asserted at every public entry")
            let v = usize::from(row[a.col as usize].min(a.clamp));
            let at = a.offset as usize + v * K;
            let seg = &self.table[at..at + K];
            for j in 0..K {
                acc[j] += seg[j];
            }
        }
        out[..K].copy_from_slice(&acc);
    }

    /// The any-`n_classes` fallback accumulation (identical addend order;
    /// the accumulators just live in `out`).
    fn accumulate_dyn(&self, row: &[u8], out: &mut [f64]) {
        let k = self.n_classes;
        for a in &self.attrs {
            // audit: allow(D006, reason = "lowering stores a full n_classes segment for every clamped value and resolves columns in range; row width is asserted at every public entry")
            let v = usize::from(row[a.col as usize].min(a.clamp));
            let at = a.offset as usize + v * k;
            // audit: allow(D006, reason = "the block for a clamped value always holds n_classes entries by construction")
            let seg = &self.table[at..at + k];
            for (score, &t) in out.iter_mut().zip(seg) {
                *score += t;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum CompiledKind {
    Tree(CompiledTree),
    Rules(CompiledRules),
    Bayes(CompiledBayes),
}

/// One trained [`AnyModel`] lowered to its flat executable form, bound to
/// a fixed full-width row layout (the class column position is baked into
/// every stored column index).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    kind: CompiledKind,
    row_width: usize,
    n_classes: usize,
}

impl CompiledModel {
    /// Lowers `model` for scoring full-width rows whose class column is
    /// `class_col` (use [`NO_CLASS`] for bare attribute vectors).
    pub fn compile(model: &AnyModel, class_col: usize) -> CompiledModel {
        let (kind, n_attrs) = match model {
            AnyModel::C45(m) => (CompiledKind::Tree(m.lower(class_col)), m.n_attrs()),
            AnyModel::Ripper(m) => (CompiledKind::Rules(m.lower(class_col)), m.n_attrs()),
            AnyModel::Bayes(m) => (CompiledKind::Bayes(m.lower(class_col)), m.n_attrs()),
        };
        CompiledModel {
            kind,
            row_width: n_attrs + usize::from(class_col != NO_CLASS),
            n_classes: model.n_classes(),
        }
    }

    /// Number of classes the model distinguishes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Width of the full rows this model was compiled for.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    #[inline]
    fn check_width(&self, row: &[u8]) {
        assert_eq!(
            row.len(),
            self.row_width,
            "attribute vector length mismatch"
        );
    }

    /// Writes the class distribution for `row` into `out` (cleared
    /// first); bit-identical to the interpreted
    /// [`Classifier::class_probs_into`].
    pub fn class_probs_into(&self, row: &[u8], out: &mut Vec<f64>) {
        self.check_width(row);
        match &self.kind {
            CompiledKind::Tree(t) => {
                let node = t.node_for(row);
                out.clear();
                out.extend_from_slice(t.probs_of(node));
            }
            CompiledKind::Rules(r) => {
                let rule = r.match_for(row);
                out.clear();
                out.extend_from_slice(r.probs_of(rule));
            }
            CompiledKind::Bayes(b) => b.class_probs_into(row, out),
        }
    }

    /// The predicted class for `row`; identical tie-breaking to the
    /// interpreted `predict_row` (trees and Bayes: last maximum; rules:
    /// first match, then the default counts' last maximum).
    pub fn predict(&self, row: &[u8], scratch: &mut Vec<f64>) -> u8 {
        self.check_width(row);
        match &self.kind {
            // audit: allow(D006, reason = "preds has one entry per node/rule-plus-default by construction")
            CompiledKind::Tree(t) => t.preds[t.node_for(row)],
            // audit: allow(D006, reason = "preds has one entry per rule plus the default by construction")
            CompiledKind::Rules(r) => r.preds[r.match_for(row)],
            CompiledKind::Bayes(b) => {
                b.class_probs_into(row, scratch);
                argmax_last(scratch)
            }
        }
    }

    /// The probability the model assigns to `class` for `row`; `0.0` for
    /// out-of-range classes, as on the interpreted path.
    pub fn prob_of(&self, row: &[u8], class: u8, scratch: &mut Vec<f64>) -> f64 {
        self.check_width(row);
        match &self.kind {
            CompiledKind::Tree(t) => {
                let seg = t.probs_of(t.node_for(row));
                seg.get(usize::from(class)).copied().unwrap_or(0.0)
            }
            CompiledKind::Rules(r) => {
                let seg = r.probs_of(r.match_for(row));
                seg.get(usize::from(class)).copied().unwrap_or(0.0)
            }
            CompiledKind::Bayes(b) => {
                b.class_probs_into(row, scratch);
                scratch.get(usize::from(class)).copied().unwrap_or(0.0)
            }
        }
    }
}

/// A whole cross-feature ensemble lowered to compiled form: sub-model *i*
/// predicts feature *i* from the rest of the row.
#[derive(Debug, Clone)]
pub struct CompiledEnsemble {
    models: Vec<CompiledModel>,
    n_features: usize,
}

impl CompiledEnsemble {
    /// Lowers every sub-model; sub-model *i* is compiled with its own
    /// feature as the class column, matching the interpreted ensemble.
    ///
    /// # Panics
    ///
    /// Panics when `sub_models` is empty or a sub-model's attribute count
    /// disagrees with the ensemble width.
    pub fn compile(sub_models: &[AnyModel]) -> CompiledEnsemble {
        assert!(!sub_models.is_empty(), "cannot compile an empty ensemble");
        let models: Vec<CompiledModel> = sub_models
            .iter()
            .enumerate()
            .map(|(i, m)| CompiledModel::compile(m, i))
            .collect();
        let n_features = models.len();
        for m in &models {
            assert_eq!(m.row_width, n_features, "sub-model row width mismatch");
        }
        CompiledEnsemble { models, n_features }
    }

    /// Number of features (== sub-models == row width).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Scores one discretized event row; bit-identical to the interpreted
    /// ensemble's average sub-model score. `scratch` is a reusable
    /// probability buffer: after warm-up no allocation happens here.
    pub fn score_row(&self, row: &[u8], method: CompiledMethod, scratch: &mut Vec<f64>) -> f64 {
        assert_eq!(row.len(), self.n_features, "event width mismatch");
        let mut total = 0.0;
        for (i, model) in self.models.iter().enumerate() {
            total += one_model_score(model, row, i, method, scratch);
        }
        total / self.n_features as f64
    }

    /// Scores a packed row-major batch (`rows.len()` must be a multiple
    /// of [`CompiledEnsemble::n_features`]) into `out`, one score per row,
    /// in structure-of-arrays order: all rows through model *i*, then
    /// model *i+1*, so each model's tables stay cache-hot across the
    /// batch. Per-row results are bit-identical to
    /// [`CompiledEnsemble::score_row`] — each row's accumulator receives
    /// the same contributions in the same model order.
    pub fn score_batch(
        &self,
        rows: &[u8],
        method: CompiledMethod,
        out: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) {
        assert_eq!(
            rows.len() % self.n_features,
            0,
            "packed rows width mismatch"
        );
        let n_rows = rows.len() / self.n_features;
        out.clear();
        out.resize(n_rows, 0.0);
        for (i, model) in self.models.iter().enumerate() {
            for (acc, row) in out.iter_mut().zip(rows.chunks_exact(self.n_features)) {
                *acc += one_model_score(model, row, i, method, scratch);
            }
        }
        let width = self.n_features as f64;
        for acc in out.iter_mut() {
            *acc /= width;
        }
    }
}

/// Sub-model `i`'s contribution for one row — the compiled analogue of
/// the interpreted ensemble's `one_model_score`.
#[inline]
fn one_model_score(
    model: &CompiledModel,
    row: &[u8],
    i: usize,
    method: CompiledMethod,
    scratch: &mut Vec<f64>,
) -> f64 {
    // audit: allow(D006, reason = "i enumerates the ensemble's models and row width == n_features is asserted at every public entry")
    let truth = row[i];
    match method {
        CompiledMethod::MatchCount => f64::from(model.predict(row, scratch) == truth),
        CompiledMethod::AvgProbability => model.prob_of(row, truth, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::NominalTable;
    use crate::{Classifier, Learner, NaiveBayes, Ripper, C45};

    fn table(rows: Vec<Vec<u8>>, cards: Vec<usize>) -> NominalTable {
        let names = (0..cards.len()).map(|i| format!("f{i}")).collect();
        NominalTable::new(names, cards, rows).unwrap()
    }

    /// Deterministic but irregular training rows over `cards`.
    fn training_rows(cards: &[usize], n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|r| {
                cards
                    .iter()
                    .enumerate()
                    .map(|(c, &card)| (((r * 7 + c * 13 + r * c) % 31) % card) as u8)
                    .collect()
            })
            .collect()
    }

    /// Every row the cards admit, plus out-of-domain values.
    fn probe_rows(cards: &[usize]) -> Vec<Vec<u8>> {
        let mut rows = vec![Vec::new()];
        for &card in cards {
            let mut next = Vec::new();
            for prefix in &rows {
                for v in 0..card.min(4) + 1 {
                    let mut row = prefix.clone();
                    row.push(v as u8); // card.min(4) probes out-of-domain
                    next.push(row);
                }
            }
            rows = next;
        }
        rows
    }

    fn assert_model_equivalent(model: &AnyModel, class_col: usize, cards: &[usize]) {
        let compiled = CompiledModel::compile(model, class_col);
        let mut want = Vec::new();
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for row in probe_rows(cards) {
            model.class_probs_into(&row, class_col, &mut want);
            compiled.class_probs_into(&row, &mut got);
            let want_bits: Vec<u64> = want.iter().map(|p| p.to_bits()).collect();
            let got_bits: Vec<u64> = got.iter().map(|p| p.to_bits()).collect();
            assert_eq!(want_bits, got_bits, "probs for {row:?}");
            assert_eq!(
                model.predict_row(&row, class_col, &mut scratch),
                compiled.predict(&row, &mut scratch),
                "prediction for {row:?}"
            );
            for class in 0..model.n_classes() as u8 + 2 {
                assert_eq!(
                    model
                        .prob_of_row(&row, class_col, class, &mut scratch)
                        .to_bits(),
                    compiled.prob_of(&row, class, &mut scratch).to_bits(),
                    "prob of class {class} for {row:?}"
                );
            }
        }
    }

    #[test]
    fn each_family_compiles_bit_identically() {
        let cards = vec![3, 4, 2, 3];
        let t = table(training_rows(&cards, 120), cards.clone());
        for class_col in 0..cards.len() {
            let c45 = AnyModel::C45(C45::default().fit(&t, class_col));
            let rip = AnyModel::Ripper(Ripper::default().fit(&t, class_col));
            let nb = AnyModel::Bayes(NaiveBayes::default().fit(&t, class_col));
            assert_model_equivalent(&c45, class_col, &cards);
            assert_model_equivalent(&rip, class_col, &cards);
            assert_model_equivalent(&nb, class_col, &cards);
        }
    }

    #[test]
    fn batch_matches_row_at_a_time() {
        let cards = vec![3, 3, 4];
        let t = table(training_rows(&cards, 90), cards.clone());
        let sub_models: Vec<AnyModel> = (0..cards.len())
            .map(|i| AnyModel::Bayes(NaiveBayes::default().fit(&t, i)))
            .collect();
        let ensemble = CompiledEnsemble::compile(&sub_models);
        let rows: Vec<Vec<u8>> = probe_rows(&cards);
        let packed: Vec<u8> = rows.iter().flatten().copied().collect();
        let mut scratch = Vec::new();
        for method in [CompiledMethod::MatchCount, CompiledMethod::AvgProbability] {
            let mut batch = Vec::new();
            ensemble.score_batch(&packed, method, &mut batch, &mut scratch);
            assert_eq!(batch.len(), rows.len());
            for (row, &score) in rows.iter().zip(&batch) {
                assert_eq!(
                    ensemble.score_row(row, method, &mut scratch).to_bits(),
                    score.to_bits(),
                    "batch vs row for {row:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "packed rows width mismatch")]
    fn batch_rejects_ragged_input() {
        let cards = vec![2, 2];
        let t = table(training_rows(&cards, 40), cards.clone());
        let sub_models: Vec<AnyModel> = (0..2)
            .map(|i| AnyModel::Bayes(NaiveBayes::default().fit(&t, i)))
            .collect();
        let ensemble = CompiledEnsemble::compile(&sub_models);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        ensemble.score_batch(
            &[0, 1, 0],
            CompiledMethod::MatchCount,
            &mut out,
            &mut scratch,
        );
    }
}
