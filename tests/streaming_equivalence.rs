//! Acceptance test for the streaming refactor: scoring a full attack
//! scenario live (audit events → incremental extractor → online detector)
//! must reproduce the batch pipeline (full `NodeTrace` → batch extractor →
//! batch scoring) **bit for bit**, while also raising each alarm within
//! one monitor step of the offending window closing.

use manet_cfa::core::ScoreMethod;
use manet_cfa::core::MONITOR_STEP_SECS;
use manet_cfa::pipeline::{ClassifierKind, Pipeline};
use manet_cfa::scenario::{Attack, Protocol, Scenario, Transport};

fn base(protocol: Protocol, seed: u64) -> Scenario {
    Scenario::paper_default(protocol, Transport::Cbr)
        .with_nodes(25)
        .with_connections(12)
        .with_duration(400.0)
        .with_seed(seed)
}

/// Batch-scores `scenario` and live-streams it, then checks both paths
/// agree exactly.
fn assert_stream_matches_batch(pipeline: &Pipeline, train: &Scenario, scenario: &Scenario) {
    let train_bundles = train.run_nodes(&Pipeline::default_train_nodes(train.n_nodes));
    let trained = pipeline.fit(&train_bundles);

    // Batch path: full simulation, retained trace, post-hoc scoring.
    let bundle = scenario.run();
    let batch_scores = trained.score_matrix(&bundle.matrix);

    // Streaming path: identical simulation scored while it runs.
    let report = trained.stream_scenario(scenario);
    assert_eq!(report.series.len(), 1);
    let series = &report.series[0].series;

    assert_eq!(
        series.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
        bundle.matrix.times,
        "streamed snapshot times differ from batch rows"
    );
    assert_eq!(series.len(), batch_scores.len());
    for (&(t, live), &batch) in series.iter().zip(&batch_scores) {
        assert!(
            live.to_bits() == batch.to_bits(),
            "score diverged at t={t}: streamed {live} != batch {batch}"
        );
    }

    // The monitor's alarms are exactly the snapshots whose smoothed batch
    // score dips below the trained threshold, detected within one step.
    let expected_alarms: Vec<f64> = bundle
        .matrix
        .times
        .iter()
        .zip(&batch_scores)
        .filter(|&(_, &s)| s < trained.fitted_threshold().threshold)
        .map(|(&t, _)| t)
        .collect();
    let got_alarms: Vec<f64> = report.alarms.iter().map(|a| a.snapshot_time).collect();
    assert_eq!(got_alarms, expected_alarms);
    for a in &report.alarms {
        assert_eq!(a.node, scenario.monitored);
        assert!(
            a.latency() >= 0.0 && a.latency() <= MONITOR_STEP_SECS + 1e-9,
            "alarm at t={} detected {}s late",
            a.snapshot_time,
            a.latency()
        );
    }
}

#[test]
fn streamed_attack_scenario_scores_bit_identical_to_batch_aodv() {
    let pipeline = Pipeline::new(ClassifierKind::C45, ScoreMethod::AvgProbability);
    let train = base(Protocol::Aodv, 1);
    let attacked = base(Protocol::Aodv, 3).with_attack(Attack::blackhole_at(&[200.0, 320.0]));
    assert_stream_matches_batch(&pipeline, &train, &attacked);
}

#[test]
fn streamed_attack_scenario_scores_bit_identical_to_batch_dsr() {
    let pipeline = Pipeline::new(ClassifierKind::NaiveBayes, ScoreMethod::MatchCount);
    let train = base(Protocol::Dsr, 5);
    let attacked = base(Protocol::Dsr, 7).with_attack(Attack::storm_at(&[150.0, 300.0]));
    assert_stream_matches_batch(&pipeline, &train, &attacked);
}
