//! Hash-shaker: the end-to-end determinism guarantee the `det` collection
//! layer (and cfa-audit's D001 rule) exists to protect.
//!
//! `HashMap`/`HashSet` iteration order is seeded per *process* from OS
//! entropy, so a nondeterminism bug of that class reproduces across two
//! runs **in the same process** only by luck — but it reliably shows up
//! across processes. These tests therefore run the full pipeline twice
//! from scratch inside one process AND are built to be run repeatedly in
//! CI (each invocation is a fresh `RandomState`): any hash-order leak into
//! event ordering, feature extraction, or model fitting eventually shakes
//! out as a `to_bits` mismatch here.

use manet_cfa::core::{Parallelism, ScoreMethod};
use manet_cfa::fleet::{run_fleet, FleetSpec};
use manet_cfa::pipeline::{ClassifierKind, Pipeline, TrainedPipeline};
use manet_cfa::scenario::{Attack, Protocol, Scenario, Transport};
use manet_cfa::sim::NodeId;

fn attack_scenario(protocol: Protocol) -> (Scenario, Scenario) {
    let train = Scenario::paper_default(protocol, Transport::Cbr)
        .with_nodes(25)
        .with_connections(12)
        .with_duration(400.0)
        .with_seed(11);
    let attacked = Scenario::paper_default(protocol, Transport::Cbr)
        .with_nodes(25)
        .with_connections(12)
        .with_duration(400.0)
        .with_seed(13)
        .with_attack(Attack::blackhole_at(&[180.0, 310.0]));
    (train, attacked)
}

/// Trains and scores the attacked scenario completely from scratch.
fn score_once(protocol: Protocol, kind: ClassifierKind, method: ScoreMethod) -> Vec<u64> {
    let (train, attacked) = attack_scenario(protocol);
    let train_bundles = train.run_nodes(&Pipeline::default_train_nodes(train.n_nodes));
    let trained = Pipeline::new(kind, method).fit(&train_bundles);
    let bundle = attacked.run();
    trained
        .score_matrix(&bundle.matrix)
        .into_iter()
        .map(f64::to_bits)
        .collect()
}

#[test]
fn aodv_attack_scenario_scores_bit_identical_across_runs() {
    let a = score_once(
        Protocol::Aodv,
        ClassifierKind::C45,
        ScoreMethod::AvgProbability,
    );
    let b = score_once(
        Protocol::Aodv,
        ClassifierKind::C45,
        ScoreMethod::AvgProbability,
    );
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "AODV pipeline scores are not bit-identical across runs"
    );
}

#[test]
fn scores_survive_a_save_load_round_trip_bit_identically() {
    // The persistence leg of the shaker: the score matrix of a pipeline
    // that went through `save` → `load` (the `CFAM` artifact format) must
    // be `to_bits`-identical to the in-memory pipeline's. Any float
    // rounding, reordering, or lossy encoding in the artifact shows up
    // here.
    let (train, attacked) = attack_scenario(Protocol::Aodv);
    let train_bundles = train.run_nodes(&Pipeline::default_train_nodes(train.n_nodes));
    let trained =
        Pipeline::new(ClassifierKind::NaiveBayes, ScoreMethod::AvgProbability).fit(&train_bundles);

    let mut artifact_bytes = Vec::new();
    trained
        .save(&mut artifact_bytes)
        .expect("save to memory cannot fail");
    let reloaded = TrainedPipeline::load(&mut artifact_bytes.as_slice())
        .expect("the just-saved artifact must load");

    let bundle = attacked.run();
    let direct: Vec<u64> = trained
        .score_matrix(&bundle.matrix)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let through_disk: Vec<u64> = reloaded
        .score_matrix(&bundle.matrix)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert!(!direct.is_empty());
    assert_eq!(
        direct, through_disk,
        "scores through a persistence round trip are not bit-identical"
    );
    assert_eq!(
        trained.fitted_threshold(),
        reloaded.fitted_threshold(),
        "fitted threshold/FAR pair must survive the round trip exactly"
    );

    // Saving the reloaded pipeline must reproduce the artifact byte for
    // byte — the format is canonical, not merely round-trippable.
    let mut second = Vec::new();
    reloaded.save(&mut second).expect("second save");
    assert_eq!(
        artifact_bytes, second,
        "artifact encoding must be byte-deterministic"
    );
}

#[test]
fn compiled_pipeline_scores_are_bit_identical_to_interpreted() {
    // The compiled-engine leg of the shaker: over full attack pipelines
    // (train on normal traffic, score a blackhole scenario), the flat
    // compiled execution path must reproduce the interpreted ensemble
    // `to_bits`-exactly — for every model family, both scoring methods,
    // and both routing protocols, whether the engine is installed by
    // `compile()` or lowered on the fly.
    let combos: &[(Protocol, &[(ClassifierKind, ScoreMethod)])] = &[
        (
            Protocol::Aodv,
            &[
                (ClassifierKind::C45, ScoreMethod::AvgProbability),
                (ClassifierKind::NaiveBayes, ScoreMethod::AvgProbability),
            ],
        ),
        (
            Protocol::Dsr,
            &[(ClassifierKind::Ripper, ScoreMethod::MatchCount)],
        ),
    ];
    for &(protocol, kinds) in combos {
        let (train, attacked) = attack_scenario(protocol);
        let train_bundles = train.run_nodes(&Pipeline::default_train_nodes(train.n_nodes));
        let bundle = attacked.run();
        for &(kind, method) in kinds {
            let mut trained = Pipeline::new(kind, method).fit(&train_bundles);
            let interpreted: Vec<u64> = trained
                .score_matrix(&bundle.matrix)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            let on_the_fly: Vec<u64> = trained
                .score_matrix_compiled(&bundle.matrix)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            trained.compile();
            let compiled: Vec<u64> = trained
                .score_matrix_compiled(&bundle.matrix)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert!(!interpreted.is_empty());
            assert_eq!(
                interpreted, on_the_fly,
                "{protocol:?}/{kind:?}/{method:?}: on-the-fly compiled scores diverge"
            );
            assert_eq!(
                interpreted, compiled,
                "{protocol:?}/{kind:?}/{method:?}: compiled scores diverge"
            );
        }
    }
}

#[test]
fn fleet_matrices_are_bit_identical_at_any_thread_count() {
    // The fleet leg of the shaker: one attack scenario batch through the
    // `fleet` driver at 1, 2, and 4 threads. Feature matrices (and
    // labels) must be `to_bits`-identical to the single-threaded run —
    // the same contract as the parallel ensemble engine, now holding for
    // whole seeded simulations.
    let (_, attacked) = attack_scenario(Protocol::Aodv);
    let spec = |threads: usize| FleetSpec {
        base: attacked.clone(),
        seeds: vec![13, 14, 15],
        vantages: vec![NodeId(0), NodeId(3)],
        parallelism: Parallelism::threads(threads),
    };
    let reference = run_fleet(&spec(1));
    let ref_bits: Vec<Vec<u64>> = reference
        .runs
        .iter()
        .flat_map(|r| &r.bundles)
        .map(|b| {
            b.matrix
                .rows
                .iter()
                .flatten()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    assert!(!ref_bits.is_empty());
    let checksum = reference.checksum();
    for threads in [2usize, 4] {
        let run = run_fleet(&spec(threads));
        let bits: Vec<Vec<u64>> = run
            .runs
            .iter()
            .flat_map(|r| &r.bundles)
            .map(|b| {
                b.matrix
                    .rows
                    .iter()
                    .flatten()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        assert_eq!(
            ref_bits, bits,
            "fleet matrices diverge at {threads} threads"
        );
        assert_eq!(
            checksum,
            run.checksum(),
            "fleet checksum diverges at {threads} threads"
        );
        let labels: Vec<&Vec<bool>> = run
            .runs
            .iter()
            .flat_map(|r| &r.bundles)
            .map(|b| &b.labels)
            .collect();
        let ref_labels: Vec<&Vec<bool>> = reference
            .runs
            .iter()
            .flat_map(|r| &r.bundles)
            .map(|b| &b.labels)
            .collect();
        assert_eq!(
            ref_labels, labels,
            "fleet labels diverge at {threads} threads"
        );
    }
}

#[test]
fn dsr_attack_scenario_scores_bit_identical_across_runs() {
    let a = score_once(
        Protocol::Dsr,
        ClassifierKind::Ripper,
        ScoreMethod::MatchCount,
    );
    let b = score_once(
        Protocol::Dsr,
        ClassifierKind::Ripper,
        ScoreMethod::MatchCount,
    );
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "DSR pipeline scores are not bit-identical across runs"
    );
}
