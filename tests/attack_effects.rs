//! Integration: every implemented intrusion measurably perturbs the
//! feature stream of an honest monitored node.

use manet_cfa::attacks::{DropPolicy, Schedule};
use manet_cfa::scenario::{Attack, AttackKind, Protocol, Scenario, Transport};
use manet_cfa::sim::{NodeId, SimTime};

/// A dropper that discards *all* transit data (strongest variant).
fn constant_dropper(start: f64) -> Attack {
    Attack {
        kind: AttackKind::Dropping(DropPolicy::Constant),
        schedule: Schedule::sessions([(
            SimTime::from_secs(start),
            SimTime::from_secs(start + 200.0),
        )]),
        attacker: Attack::DEFAULT_ATTACKER,
    }
}

fn base(protocol: Protocol) -> Scenario {
    Scenario::paper_default(protocol, Transport::Cbr)
        .with_nodes(30)
        .with_connections(15)
        .with_duration(400.0)
        .with_seed(31)
}

/// Mean absolute per-feature difference between attacked and clean runs of
/// the same seed, over the post-attack region.
fn perturbation(attack: Attack, protocol: Protocol) -> f64 {
    let clean = base(protocol).run();
    let attacked = base(protocol).with_attack(attack).run();
    let mut total = 0.0;
    let mut n = 0.0;
    for (row_a, (row_c, &t)) in attacked
        .matrix
        .rows
        .iter()
        .zip(clean.matrix.rows.iter().zip(&clean.matrix.times))
    {
        if t < 200.0 {
            continue;
        }
        for (a, c) in row_a.iter().zip(row_c) {
            total += (a - c).abs();
            n += 1.0;
        }
    }
    total / n
}

#[test]
fn blackhole_perturbs_aodv_features() {
    let d = perturbation(Attack::blackhole_at(&[200.0]), Protocol::Aodv);
    assert!(
        d > 1.0,
        "black hole should visibly move features, got {d:.3}"
    );
}

#[test]
fn blackhole_perturbs_dsr_features() {
    let d = perturbation(Attack::blackhole_at(&[200.0]), Protocol::Dsr);
    assert!(
        d > 1.0,
        "black hole should visibly move features, got {d:.3}"
    );
}

#[test]
fn dropping_perturbs_features() {
    let d = perturbation(constant_dropper(200.0), Protocol::Aodv);
    assert!(
        d > 0.01,
        "constant dropping should move features, got {d:.4}"
    );
}

#[test]
fn selective_dropping_is_subtler_than_constant() {
    // The paper calls the dropping attack "more confusing": scoping the
    // dropper to one destination perturbs the network less than dropping
    // everything.
    let selective = perturbation(Attack::dropping_at(&[200.0], NodeId(3)), Protocol::Aodv);
    let constant = perturbation(constant_dropper(200.0), Protocol::Aodv);
    assert!(
        selective <= constant,
        "selective ({selective:.4}) should not exceed constant ({constant:.4})"
    );
}

#[test]
fn update_storm_perturbs_features() {
    let d = perturbation(Attack::storm_at(&[200.0]), Protocol::Aodv);
    assert!(
        d > 1.0,
        "update storm should visibly move features, got {d:.3}"
    );
}

#[test]
fn dormant_dropper_leaves_the_run_bit_identical() {
    // A PacketDropper arms no timers, so before its schedule activates the
    // attacked run is *bit-identical* to the clean run. (Blackhole/storm
    // wrappers do arm advertisement timers, which legitimately reshuffle
    // same-instant event ordering and thus shared radio randomness.)
    let clean = base(Protocol::Aodv).run();
    let attacked = base(Protocol::Aodv)
        .with_attack(constant_dropper(200.0))
        .run();
    for ((row_a, row_c), &t) in attacked
        .matrix
        .rows
        .iter()
        .zip(&clean.matrix.rows)
        .zip(&clean.matrix.times)
    {
        if t <= 195.0 {
            assert_eq!(row_a, row_c, "pre-attack divergence at t = {t}");
        }
    }
}
