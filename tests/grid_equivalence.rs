//! The spatial grid's headline contract at the top of the stack: on the
//! paper's scenarios (20-node worlds, real routing protocols, attacks in
//! play), the grid propagation path and the brute-force all-nodes scan
//! produce **bit-identical** feature matrices and labels. If the grid
//! ever returned a near-miss superset (wrong member, wrong order, stale
//! position accepted), a single extra RNG draw would cascade into a
//! different trace and show up here.

use manet_cfa::scenario::{Attack, LabelPolicy, Protocol, Scenario, Transport};
use manet_cfa::sim::NodeId;

fn paper_attacked(protocol: Protocol) -> Scenario {
    Scenario::paper_default(protocol, Transport::Cbr)
        .with_nodes(20)
        .with_connections(12)
        .with_duration(400.0)
        .with_seed(17)
        .with_attack(Attack::blackhole_at(&[120.0, 250.0]))
        .with_attack(Attack::storm_at(&[300.0]).from_node(NodeId(11)))
        .with_label_policy(LabelPolicy::SessionsOnly)
}

fn assert_paths_match(scenario: Scenario) {
    let grid = scenario.clone().with_neighbor_grid(true).run();
    let brute = scenario.with_neighbor_grid(false).run();
    assert!(grid.matrix.n_rows() > 0);
    assert_eq!(grid.matrix.times, brute.matrix.times);
    let grid_bits: Vec<Vec<u64>> = grid
        .matrix
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect();
    let brute_bits: Vec<Vec<u64>> = brute
        .matrix
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect();
    assert_eq!(grid_bits, brute_bits, "feature matrices diverge");
    assert_eq!(grid.labels, brute.labels, "labels diverge");
}

#[test]
fn aodv_attack_features_match_bit_for_bit() {
    assert_paths_match(paper_attacked(Protocol::Aodv));
}

#[test]
fn dsr_attack_features_match_bit_for_bit() {
    assert_paths_match(paper_attacked(Protocol::Dsr));
}

#[test]
fn tcp_normal_trace_matches_bit_for_bit() {
    // No attacks, TCP transport: exercises the retransmission machinery
    // over both propagation paths.
    let s = Scenario::paper_default(Protocol::Aodv, Transport::Tcp)
        .with_nodes(20)
        .with_connections(12)
        .with_duration(300.0)
        .with_seed(23);
    assert_paths_match(s);
}

#[test]
fn scaled_world_matches_bit_for_bit() {
    // A denser scale point (100 nodes at paper density) — multiple grid
    // cells are genuinely in play, unlike the 1000×1000 m paper world
    // where 250 m cells give a 4×4 grid.
    let s = Scenario::paper_default(Protocol::Dsr, Transport::Cbr)
        .with_scale(100)
        .with_duration(120.0)
        .with_seed(29);
    assert_paths_match(s);
}
