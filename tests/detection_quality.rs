//! Full-loop detection-quality test at a meaningful (if reduced) scale.
//!
//! Skipped in debug builds — a 3 × 3000 s simulation plus 140 sub-model
//! training is only practical with optimizations on. Run via
//! `cargo test --release --test detection_quality`.

use manet_cfa::core::ScoreMethod;
use manet_cfa::pipeline::{ClassifierKind, Pipeline};
use manet_cfa::scenario::{Attack, Protocol, Scenario, Transport};

fn skip_in_debug() -> bool {
    if cfg!(debug_assertions) {
        eprintln!("skipping detection-quality test in debug build (needs --release)");
        true
    } else {
        false
    }
}

#[test]
fn cross_feature_analysis_detects_blackhole_on_aodv() {
    if skip_in_debug() {
        return;
    }
    let base = Scenario::paper_default(Protocol::Aodv, Transport::Cbr)
        .with_connections(40)
        .with_duration(3_000.0);
    let train_nodes = Pipeline::default_train_nodes(50);
    let mut train = base.clone().with_seed(1).run_nodes(&train_nodes);
    train.extend(base.clone().with_seed(2).run_nodes(&train_nodes));
    let normal = base.clone().with_seed(3).run();
    let attacked = base
        .clone()
        .with_seed(4)
        .with_attack(Attack::blackhole_at(&[1_000.0, 2_000.0]))
        .run();

    let pipeline = Pipeline::new(ClassifierKind::NaiveBayes, ScoreMethod::AvgProbability);
    let outcome = pipeline.evaluate(&train, &[normal, attacked]);

    // Random guessing on this mixture sits at AUC ≈ positives/total − 0.5.
    let frac_pos =
        outcome.events.iter().filter(|e| e.is_anomaly).count() as f64 / outcome.events.len() as f64;
    let random = frac_pos - 0.5;
    assert!(
        outcome.auc > random + 0.15,
        "detector must clearly beat random: AUC {:+.3} vs random {:+.3}",
        outcome.auc,
        random
    );
    let best = outcome.optimal.expect("curve non-empty");
    assert!(
        best.recall >= 0.5 && best.precision >= 0.5,
        "optimal point too weak: recall {:.2} precision {:.2}",
        best.recall,
        best.precision
    );
}

#[test]
fn attack_windows_score_lower_than_normal_windows() {
    if skip_in_debug() {
        return;
    }
    let base = Scenario::paper_default(Protocol::Aodv, Transport::Cbr)
        .with_connections(40)
        .with_duration(3_000.0);
    let train_nodes = Pipeline::default_train_nodes(50);
    let train = base.clone().with_seed(11).run_nodes(&train_nodes);
    let attacked = base
        .clone()
        .with_seed(12)
        .with_attack(Attack::blackhole_at(&[1_500.0]))
        .run();
    let pipeline = Pipeline::new(ClassifierKind::NaiveBayes, ScoreMethod::AvgProbability);
    let outcome = pipeline.evaluate(&train, &[attacked]);
    let trace = &outcome.traces[0];
    let mean = |pred: &dyn Fn(bool) -> bool| {
        let v: Vec<f64> = trace
            .series
            .iter()
            .zip(&trace.labels)
            .filter(|&(_, &l)| pred(l))
            .map(|(&(_, s), _)| s)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let normal_mean = mean(&|l| !l);
    let attack_mean = mean(&|l| l);
    assert!(
        attack_mean < normal_mean,
        "attack-era windows must score lower: attack {attack_mean:.3} vs normal {normal_mean:.3}"
    );
}
