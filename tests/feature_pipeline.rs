//! Integration: simulator → features → discretizer → detector, across
//! crate boundaries.

use manet_cfa::core::{AnomalyDetector, ScoreMethod};
use manet_cfa::features::{EqualFrequencyDiscretizer, FeatureExtractor, N_FEATURES};
use manet_cfa::ml::naive_bayes::NaiveBayes;
use manet_cfa::routing::aodv::AodvAgent;
use manet_cfa::sim::{NodeId, SimConfig, SimTime, Simulator};
use manet_cfa::traffic::{ConnectionPattern, Transport};

#[test]
fn full_chain_produces_a_working_detector() {
    let cfg = SimConfig::builder()
        .nodes(20)
        .duration_secs(300.0)
        .seed(77)
        .build();
    let mut sim = Simulator::new(cfg, |_| AodvAgent::new());
    ConnectionPattern::random(20, 10, Transport::Cbr, SimTime::from_secs(300.0), 77)
        .install(&mut sim);
    sim.run();

    let matrix = FeatureExtractor::new().extract(sim.trace(NodeId(0)), SimTime::from_secs(300.0));
    assert_eq!(matrix.n_cols(), N_FEATURES);
    assert_eq!(matrix.n_rows(), 60);

    let disc = EqualFrequencyDiscretizer::fit(&matrix, 5, None, 1);
    let table = disc.transform(&matrix).expect("consistent schema");
    let detector = AnomalyDetector::fit(
        &NaiveBayes::default(),
        &table,
        ScoreMethod::AvgProbability,
        0.05,
    );
    // On its own training data, the false-alarm budget must hold.
    let alarms = table
        .to_rows()
        .iter()
        .filter(|r| detector.classify(r) == manet_cfa::core::Verdict::Anomaly)
        .count();
    assert!(
        alarms as f64 <= 0.05 * table.n_rows() as f64 + 1.0,
        "{alarms} alarms exceed the 5% budget on training data"
    );
}

#[test]
fn feature_count_is_the_papers_140() {
    assert_eq!(N_FEATURES, 140);
    assert_eq!(manet_cfa::features::N_TRAFFIC_FEATURES, 132);
    let spec = manet_cfa::features::FeatureSpec::new();
    assert_eq!(spec.len(), 140);
}
