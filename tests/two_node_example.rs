//! Integration test: the paper's §3 illustrative example through the
//! public API — Tables 1, 2 and 3 must reproduce exactly.

use manet_cfa::core::example2node::{SubModel, TwoNodeExample, ALL_EVENTS, NORMAL_EVENTS};
use manet_cfa::core::{CrossFeatureModel, Parallelism, ScoreMethod};
use manet_cfa::ml::{Learner, NominalTable};

#[test]
fn table1_has_four_normal_events() {
    assert_eq!(NORMAL_EVENTS.len(), 4);
    assert_eq!(ALL_EVENTS.len(), 8);
    for e in NORMAL_EVENTS {
        assert!(TwoNodeExample::is_normal(&e));
    }
}

#[test]
fn table2_submodel_probabilities() {
    // Spot-check the three probability-0.5 rules called out in the text.
    let reachable = SubModel::build(0);
    let rule = reachable
        .rules
        .iter()
        .find(|r| r.inputs == [false, false])
        .unwrap();
    assert!(rule.predicted);
    assert_eq!(rule.probability, 0.5);
    let cached = SubModel::build(2);
    let rule = cached
        .rules
        .iter()
        .find(|r| r.inputs == [false, false])
        .unwrap();
    assert!(rule.predicted);
    assert_eq!(rule.probability, 0.5);
    let delivered = SubModel::build(1);
    assert!(delivered.rules.iter().all(|r| r.probability == 1.0));
}

#[test]
fn paper_worked_example_scores() {
    // {True, False, False}: match count 1, average probability 0.83.
    let ex = TwoNodeExample::new();
    let event = [true, false, false];
    assert_eq!(ex.score(&event, ScoreMethod::MatchCount), 1.0);
    assert!((ex.score(&event, ScoreMethod::AvgProbability) - 5.0 / 6.0).abs() < 1e-9);
}

#[test]
fn algorithm3_dominates_algorithm2_here() {
    // Counted over all 8 events at threshold 0.5: Alg. 3 perfect, Alg. 2
    // one false alarm — the paper's headline for the example.
    let ex = TwoNodeExample::new();
    let errors = |method: ScoreMethod| {
        ALL_EVENTS
            .iter()
            .filter(|e| (ex.score(e, method) >= 0.5) != TwoNodeExample::is_normal(e))
            .count()
    };
    assert_eq!(errors(ScoreMethod::AvgProbability), 0);
    assert_eq!(errors(ScoreMethod::MatchCount), 1);
}

/// The two-node events as a nominal table (three binary features).
fn event_table(events: &[[bool; 3]]) -> NominalTable {
    NominalTable::new(
        vec!["reachable".into(), "delivered".into(), "cached".into()],
        vec![2, 2, 2],
        events
            .iter()
            .map(|e| e.iter().map(|&b| u8::from(b)).collect())
            .collect(),
    )
    .expect("binary events are in domain")
}

#[test]
fn thread_count_is_invisible_on_the_two_node_example() {
    // Train real cross-feature ensembles on Table 1 and score all eight
    // events of Table 3: one thread and many threads must produce
    // bit-identical scores for every learner and both algorithms.
    let normal = event_table(&NORMAL_EVENTS);
    let all = event_table(&ALL_EVENTS);
    fn check<L: Learner + Sync>(learner: &L, normal: &NominalTable, all: &NominalTable)
    where
        L::Model: manet_cfa::ml::Classifier,
    {
        for par in [Parallelism::threads(3), Parallelism::threads(16)] {
            let serial = CrossFeatureModel::train_with(learner, normal, Parallelism::serial());
            let threaded = CrossFeatureModel::train_with(learner, normal, par);
            for method in [ScoreMethod::MatchCount, ScoreMethod::AvgProbability] {
                assert_eq!(
                    serial.scores_with(all, method, Parallelism::serial()),
                    threaded.scores_with(all, method, par),
                    "scores must be bit-identical at {} threads",
                    par.n_threads()
                );
            }
        }
    }
    check(&manet_cfa::ml::NaiveBayes::default(), &normal, &all);
    check(&manet_cfa::ml::C45::default(), &normal, &all);
    check(&manet_cfa::ml::Ripper::default(), &normal, &all);
}
